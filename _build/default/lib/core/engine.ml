open Satg_circuit
open Satg_sg

type config = {
  k : int option;
  enable_random : bool;
  enable_fault_sim : bool;
  symbolic_justification : bool;
  random : Random_tpg.config;
  three_phase : Three_phase.config;
}

let default_config =
  {
    k = None;
    enable_random = true;
    enable_fault_sim = true;
    symbolic_justification = false;
    random = Random_tpg.default_config;
    three_phase = Three_phase.default_config;
  }

type result = {
  circuit : Circuit.t;
  cssg : Cssg.t;
  outcomes : Testset.outcome list;
  cpu_seconds : float;
}

let run ?(config = default_config) ?cssg circuit ~faults =
  let t0 = Sys.time () in
  let g =
    match cssg with
    | Some g -> g
    | None -> Explicit.build ?k:config.k circuit
  in
  let symbolic =
    if config.symbolic_justification then
      Some (Symbolic.build ~k:(Cssg.k g) circuit)
    else None
  in
  let status = Hashtbl.create (List.length faults) in
  (* Phase 1: random TPG. *)
  let remaining =
    if config.enable_random then begin
      let detected, remaining = Random_tpg.run ~config:config.random g ~faults in
      List.iter
        (fun (f, seq) ->
          Hashtbl.replace status f
            (Testset.Detected { sequence = seq; phase = Testset.Random }))
        detected;
      remaining
    end
    else faults
  in
  (* Phase 2: three-phase ATPG per fault, with fault simulation of each
     found test over the faults still pending. *)
  let rec deterministic = function
    | [] -> ()
    | f :: rest ->
      if Hashtbl.mem status f then deterministic rest
      else begin
        match Three_phase.find_test ~config:config.three_phase ?symbolic g f with
        | None ->
          Hashtbl.replace status f Testset.Undetected;
          deterministic rest
        | Some seq ->
          Hashtbl.replace status f
            (Testset.Detected { sequence = seq; phase = Testset.Three_phase });
          let rest =
            if config.enable_fault_sim then begin
              let caught, pending = Detect.sweep g seq rest in
              List.iter
                (fun f' ->
                  Hashtbl.replace status f'
                    (Testset.Detected
                       { sequence = seq; phase = Testset.Fault_simulation }))
                caught;
              pending
            end
            else rest
          in
          deterministic rest
      end
  in
  deterministic remaining;
  let outcomes =
    List.map
      (fun f ->
        {
          Testset.fault = f;
          status =
            (match Hashtbl.find_opt status f with
            | Some s -> s
            | None -> Testset.Undetected);
        })
      faults
  in
  { circuit; cssg = g; outcomes; cpu_seconds = Sys.time () -. t0 }

let total r = List.length r.outcomes

let detected r =
  List.length
    (List.filter (fun o -> Testset.is_detected o.Testset.status) r.outcomes)

let detected_by r phase =
  List.length
    (List.filter
       (fun o ->
         match o.Testset.status with
         | Testset.Detected { phase = p; _ } -> p = phase
         | Testset.Undetected -> false)
       r.outcomes)

let coverage_pct r =
  if total r = 0 then 100.0
  else 100.0 *. float_of_int (detected r) /. float_of_int (total r)

let undetected_faults r =
  List.filter_map
    (fun o ->
      match o.Testset.status with
      | Testset.Undetected -> Some o.Testset.fault
      | Testset.Detected _ -> None)
    r.outcomes

let pp_summary fmt r =
  Format.fprintf fmt
    "%s: %d/%d faults detected (%.2f%%) [rnd %d, 3-ph %d, sim %d] in %.2fs"
    (Circuit.name r.circuit) (detected r) (total r) (coverage_pct r)
    (detected_by r Testset.Random)
    (detected_by r Testset.Three_phase)
    (detected_by r Testset.Fault_simulation)
    r.cpu_seconds
