lib/core/random_tpg.ml: Cssg Detect List Random Satg_sg
