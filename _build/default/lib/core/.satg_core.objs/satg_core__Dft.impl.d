lib/core/dft.ml: Array Circuit Cssg Engine Fault Gatefunc List Satg_circuit Satg_fault Satg_sg Stdlib
