lib/core/engine.ml: Circuit Cssg Detect Explicit Format Hashtbl List Random_tpg Satg_circuit Satg_sg Symbolic Sys Testset Three_phase
