lib/core/three_phase.mli: Cssg Fault Satg_fault Satg_sg Symbolic Testset
