lib/core/delay_fault.ml: Array Async_sim Circuit Cssg Detect Format Hashtbl List Printf Queue Satg_circuit Satg_sg Satg_sim Stdlib String Sys Testset
