lib/core/engine.mli: Circuit Cssg Fault Format Random_tpg Satg_circuit Satg_fault Satg_sg Testset Three_phase
