lib/core/detect.mli: Circuit Cssg Fault Satg_circuit Satg_fault Satg_sg Satg_sim Ternary_sim Testset
