lib/core/testset.ml: Array Fault Format List Satg_fault String
