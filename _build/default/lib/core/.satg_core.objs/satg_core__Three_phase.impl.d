lib/core/three_phase.ml: Array Circuit Cssg Detect Fault Fun Hashtbl List Option Queue Satg_circuit Satg_fault Satg_sg Stdlib String Symbolic
