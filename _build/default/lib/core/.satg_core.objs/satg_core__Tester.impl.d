lib/core/tester.ml: Array Buffer Circuit Cssg Detect Engine Fault Format Hashtbl List Printf Satg_circuit Satg_fault Satg_sg String Testset
