lib/core/tester.mli: Circuit Engine Fault Format Satg_circuit Satg_fault
