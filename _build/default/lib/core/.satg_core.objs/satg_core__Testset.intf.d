lib/core/testset.mli: Circuit Fault Format Satg_circuit Satg_fault
