lib/core/detect.ml: Array Async_sim Circuit Cssg Fault Hashtbl List Parallel_sim Satg_circuit Satg_fault Satg_logic Satg_sg Satg_sim String Ternary Ternary_sim
