lib/core/baseline.ml: Array Circuit Detect Fault Format Gatefunc Hashtbl List Queue Satg_circuit Satg_fault Satg_sim Structure Sys Testset Unit_delay
