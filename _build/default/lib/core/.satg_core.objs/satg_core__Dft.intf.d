lib/core/dft.mli: Circuit Cssg Engine Fault Satg_circuit Satg_fault Satg_sg
