lib/core/delay_fault.mli: Circuit Cssg Format Satg_circuit Satg_sg Testset
