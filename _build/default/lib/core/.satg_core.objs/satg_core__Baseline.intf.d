lib/core/baseline.mli: Circuit Cssg Fault Format Satg_circuit Satg_fault Satg_sg Testset
