lib/core/random_tpg.mli: Cssg Fault Satg_fault Satg_sg Testset
