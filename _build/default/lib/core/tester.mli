(** Export of ATPG results as a synchronous tester program.

    The point of the paper's method is that the generated vectors can
    be applied by a real-life synchronous tester: per test cycle the
    tester drives one input vector, waits out the cycle, and compares
    the sampled primary outputs against the expected values.  This
    module materialises that artefact: each sequence becomes a burst of
    (inputs, expected outputs) pairs starting from reset, with the
    expected outputs read off the good machine's CSSG trace. *)

open Satg_circuit
open Satg_fault

type step = {
  inputs : bool array;
  expected : bool array;  (** sampled primary outputs after settling *)
}

type burst = {
  targets : Fault.t list;  (** faults this burst detects *)
  steps : step list;  (** applied after a reset *)
}

type t = {
  circuit : Circuit.t;
  reset_outputs : bool array;  (** expected outputs in the reset state *)
  bursts : burst list;
}

val of_result : Engine.result -> t
(** One burst per distinct test sequence, in first-detection order;
    faults sharing a sequence share a burst.  Undetected faults are
    ignored.
    @raise Invalid_argument if some recorded sequence is not a valid
    CSSG path (cannot happen for engine-produced results). *)

val n_bursts : t -> int
val n_vectors : t -> int

val to_string : t -> string
(** Text format, one line per tester cycle:
    {v
    # burst 1: detects y/sa0, c.pin1(b)/sa1
    reset            -> 0
    apply 11         -> 1
    apply 01         -> 1
    v} *)

val pp : Format.formatter -> t -> unit
