open Satg_sg

type config = {
  walks : int;
  walk_length : int;
  seed : int;
}

let default_config = { walks = 1; walk_length = 3; seed = 0x5eed }

let random_walk rng g len =
  let rec go i acc n =
    if n = 0 then List.rev acc
    else
      match Cssg.successors g i with
      | [] -> List.rev acc
      | succs ->
        let e = List.nth succs (Random.State.int rng (List.length succs)) in
        go e.Cssg.target (e.Cssg.vector :: acc) (n - 1)
  in
  match Cssg.initial g with
  | i :: _ -> go i [] len
  | [] -> []

let run ?(config = default_config) g ~faults =
  let rng = Random.State.make [| config.seed |] in
  let rec walks n detected remaining =
    if n = 0 || remaining = [] then (List.rev detected, remaining)
    else
      let seq = random_walk rng g config.walk_length in
      if seq = [] then (List.rev detected, remaining)
      else
        let caught, rest = Detect.sweep g seq remaining in
        let detected =
          List.fold_left (fun acc f -> (f, seq) :: acc) detected caught
        in
        walks (n - 1) detected rest
  in
  walks config.walks [] faults
