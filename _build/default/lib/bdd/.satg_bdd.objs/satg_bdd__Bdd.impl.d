lib/bdd/bdd.ml: Array Float Format Hashtbl List Stdlib
