(* Hash-consed ROBDDs, struct-of-arrays node store.  Node ids:
   0 = terminal false, 1 = terminal true, >= 2 internal.  The variable
   of a terminal is [terminal_var], larger than any real variable. *)

type t = int

let terminal_var = max_int

type man = {
  mutable var_of : int array;
  mutable low_of : int array;
  mutable high_of : int array;
  mutable n_nodes : int;
  unique : (int * int * int, int) Hashtbl.t;
  mutable bin_cache : (int * int * int, int) Hashtbl.t;
      (* key: (op_tag, a, b) with a normalised first for commutative ops *)
  mutable ite_cache : (int * int * int, int) Hashtbl.t;
  mutable not_cache : (int, int) Hashtbl.t;
  mutable n_vars : int;
}

let op_and = 0
let op_or = 1
let op_xor = 2

let create ?(unique_size = 1024) ~nvars () =
  let cap = 1024 in
  let man =
    {
      var_of = Array.make cap terminal_var;
      low_of = Array.make cap (-1);
      high_of = Array.make cap (-1);
      n_nodes = 2;
      unique = Hashtbl.create unique_size;
      bin_cache = Hashtbl.create unique_size;
      ite_cache = Hashtbl.create 256;
      not_cache = Hashtbl.create 256;
      n_vars = nvars;
    }
  in
  man

let nvars m = m.n_vars

let add_var m =
  let v = m.n_vars in
  m.n_vars <- v + 1;
  v

let zero (_ : man) = 0
let one (_ : man) = 1
let is_zero t = t = 0
let is_one t = t = 1
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (t : t) = t
let var_id m id = m.var_of.(id)

let grow m =
  let cap = Array.length m.var_of in
  if m.n_nodes >= cap then begin
    let cap' = cap * 2 in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    m.var_of <- extend m.var_of terminal_var;
    m.low_of <- extend m.low_of (-1);
    m.high_of <- extend m.high_of (-1)
  end

let mk m v l h =
  if l = h then l
  else
    let key = (v, l, h) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      grow m;
      let id = m.n_nodes in
      m.n_nodes <- id + 1;
      m.var_of.(id) <- v;
      m.low_of.(id) <- l;
      m.high_of.(id) <- h;
      Hashtbl.replace m.unique key id;
      id

let var m v =
  if v < 0 || v >= m.n_vars then invalid_arg "Bdd.var: out of range";
  mk m v 0 1

let nvar m v =
  if v < 0 || v >= m.n_vars then invalid_arg "Bdd.nvar: out of range";
  mk m v 1 0

let top_var m t =
  if t < 2 then invalid_arg "Bdd.top_var: terminal";
  m.var_of.(t)

let low m t =
  if t < 2 then invalid_arg "Bdd.low: terminal";
  m.low_of.(t)

let high m t =
  if t < 2 then invalid_arg "Bdd.high: terminal";
  m.high_of.(t)

let rec not_ m t =
  if t = 0 then 1
  else if t = 1 then 0
  else
    match Hashtbl.find_opt m.not_cache t with
    | Some r -> r
    | None ->
      let r = mk m m.var_of.(t) (not_ m m.low_of.(t)) (not_ m m.high_of.(t)) in
      Hashtbl.replace m.not_cache t r;
      r

(* Generic binary APPLY for and/or/xor with shared cache. *)
let rec apply m op a b =
  let shortcut =
    if op = op_and then
      if a = 0 || b = 0 then Some 0
      else if a = 1 then Some b
      else if b = 1 then Some a
      else if a = b then Some a
      else None
    else if op = op_or then
      if a = 1 || b = 1 then Some 1
      else if a = 0 then Some b
      else if b = 0 then Some a
      else if a = b then Some a
      else None
    else if a = b then Some 0
    else if a = 0 then Some b
    else if b = 0 then Some a
    else if a = 1 then Some (not_ m b)
    else if b = 1 then Some (not_ m a)
    else None
  in
  match shortcut with
  | Some r -> r
  | None ->
    let a, b = if a <= b then (a, b) else (b, a) in
    let key = (op, a, b) in
    (match Hashtbl.find_opt m.bin_cache key with
    | Some r -> r
    | None ->
      let va = m.var_of.(a) and vb = m.var_of.(b) in
      let v = min va vb in
      let a0, a1 = if va = v then (m.low_of.(a), m.high_of.(a)) else (a, a) in
      let b0, b1 = if vb = v then (m.low_of.(b), m.high_of.(b)) else (b, b) in
      let r = mk m v (apply m op a0 b0) (apply m op a1 b1) in
      Hashtbl.replace m.bin_cache key r;
      r)

let and_ m a b = apply m op_and a b
let or_ m a b = apply m op_or a b
let xor_ m a b = apply m op_xor a b
let imp m a b = or_ m (not_ m a) b
let iff m a b = not_ m (xor_ m a b)
let diff m a b = and_ m a (not_ m b)

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else if g = 0 && h = 1 then not_ m f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
      let var_or t = if t < 2 then terminal_var else m.var_of.(t) in
      let v = min (var_or f) (min (var_or g) (var_or h)) in
      let branch t value =
        if t < 2 || m.var_of.(t) <> v then t
        else if value then m.high_of.(t)
        else m.low_of.(t)
      in
      let r =
        mk m v
          (ite m (branch f false) (branch g false) (branch h false))
          (ite m (branch f true) (branch g true) (branch h true))
      in
      Hashtbl.replace m.ite_cache key r;
      r

let and_list m ts = List.fold_left (and_ m) 1 ts
let or_list m ts = List.fold_left (or_ m) 0 ts

let cofactor m t ~var ~value =
  let cache = Hashtbl.create 64 in
  let rec go t =
    if t < 2 then t
    else if m.var_of.(t) > var then t
    else
      match Hashtbl.find_opt cache t with
      | Some r -> r
      | None ->
        let r =
          if m.var_of.(t) = var then
            if value then m.high_of.(t) else m.low_of.(t)
          else mk m m.var_of.(t) (go m.low_of.(t)) (go m.high_of.(t))
        in
        Hashtbl.replace cache t r;
        r
  in
  go t

let compose m f ~var g =
  let cache = Hashtbl.create 64 in
  let rec go f =
    if f < 2 then f
    else if m.var_of.(f) > var then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let r =
          if m.var_of.(f) = var then ite m g m.high_of.(f) m.low_of.(f)
          else
            (* Rebuild through ITE: children may now start above this
               variable after substitution deeper down. *)
            ite m
              (mk m m.var_of.(f) 0 1)
              (go m.high_of.(f))
              (go m.low_of.(f))
        in
        Hashtbl.replace cache f r;
        r
  in
  go f

let quantify m ~vars ~disjunct t =
  if vars = [] then t
  else begin
    let max_v = List.fold_left max 0 vars in
    let in_set = Array.make (max_v + 1) false in
    List.iter
      (fun v ->
        if v < 0 || v >= m.n_vars then invalid_arg "Bdd.quantify: bad var";
        in_set.(v) <- true)
      vars;
    let cache = Hashtbl.create 256 in
    let rec go t =
      if t < 2 then t
      else if m.var_of.(t) > max_v then t
      else
        match Hashtbl.find_opt cache t with
        | Some r -> r
        | None ->
          let v = m.var_of.(t) in
          let l = go m.low_of.(t) and h = go m.high_of.(t) in
          let r =
            if in_set.(v) then
              if disjunct then or_ m l h else and_ m l h
            else mk m v l h
          in
          Hashtbl.replace cache t r;
          r
    in
    go t
  end

let exists m ~vars t = quantify m ~vars ~disjunct:true t
let forall m ~vars t = quantify m ~vars ~disjunct:false t

let and_exists m ~vars a b =
  if vars = [] then and_ m a b
  else begin
    let max_v = List.fold_left max 0 vars in
    let in_set = Array.make (max_v + 1) false in
    List.iter
      (fun v ->
        if v < 0 || v >= m.n_vars then invalid_arg "Bdd.and_exists: bad var";
        in_set.(v) <- true)
      vars;
    let cache = Hashtbl.create 1024 in
    let rec go a b =
      if a = 0 || b = 0 then 0
      else if a = 1 && b = 1 then 1
      else
        let a, b = if a <= b then (a, b) else (b, a) in
        match Hashtbl.find_opt cache (a, b) with
        | Some r -> r
        | None ->
          let var_or t = if t < 2 then terminal_var else m.var_of.(t) in
          let va = var_or a and vb = var_or b in
          let v = min va vb in
          let r =
            if v > max_v then
              (* No quantified variable below: plain conjunction. *)
              and_ m a b
            else begin
              let a0, a1 =
                if va = v then (m.low_of.(a), m.high_of.(a)) else (a, a)
              and b0, b1 =
                if vb = v then (m.low_of.(b), m.high_of.(b)) else (b, b)
              in
              if in_set.(v) then begin
                let r0 = go a0 b0 in
                if r0 = 1 then 1 else or_ m r0 (go a1 b1)
              end
              else mk m v (go a0 b0) (go a1 b1)
            end
          in
          Hashtbl.replace cache (a, b) r;
          r
    in
    go a b
  end

let permute m p t =
  let cache = Hashtbl.create 256 in
  let rec go t =
    if t < 2 then t
    else
      match Hashtbl.find_opt cache t with
      | Some r -> r
      | None ->
        let v' = p m.var_of.(t) in
        if v' < 0 || v' >= m.n_vars then invalid_arg "Bdd.permute: bad image";
        let r = ite m (mk m v' 0 1) (go m.high_of.(t)) (go m.low_of.(t)) in
        Hashtbl.replace cache t r;
        r
  in
  go t

let support m t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go t =
    if t >= 2 && not (Hashtbl.mem seen t) then begin
      Hashtbl.replace seen t ();
      Hashtbl.replace vars m.var_of.(t) ();
      go m.low_of.(t);
      go m.high_of.(t)
    end
  in
  go t;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort Stdlib.compare

let eval m t assign =
  let rec go t =
    if t = 0 then false
    else if t = 1 then true
    else if assign m.var_of.(t) then go m.high_of.(t)
    else go m.low_of.(t)
  in
  go t

let sat_count m ~nvars t =
  let cache = Hashtbl.create 256 in
  (* count over variables [var..nvars-1] *)
  let rec go t var =
    if var >= nvars then if t = 1 then 1.0 else 0.0
    else if t = 0 then 0.0
    else if t = 1 then 2.0 ** Float.of_int (nvars - var)
    else
      let v = m.var_of.(t) in
      if v > var then 2.0 *. go t (var + 1)
      else
        match Hashtbl.find_opt cache (t, var) with
        | Some r -> r
        | None ->
          let r = go m.low_of.(t) (var + 1) +. go m.high_of.(t) (var + 1) in
          Hashtbl.replace cache (t, var) r;
          r
  in
  go t 0

let any_sat m t =
  if t = 0 then raise Not_found;
  let rec go t acc =
    if t = 1 then List.rev acc
    else
      let v = m.var_of.(t) in
      if m.low_of.(t) <> 0 then go m.low_of.(t) ((v, false) :: acc)
      else go m.high_of.(t) ((v, true) :: acc)
  in
  go t []

let fold_sat m t ~init ~f =
  let rec go t acc path =
    if t = 0 then acc
    else if t = 1 then f acc (List.rev path)
    else
      let v = m.var_of.(t) in
      let acc = go m.low_of.(t) acc ((v, false) :: path) in
      go m.high_of.(t) acc ((v, true) :: path)
  in
  go t init []

let all_sat m t =
  List.rev (fold_sat m t ~init:[] ~f:(fun acc cube -> cube :: acc))

let size m t =
  let seen = Hashtbl.create 64 in
  let rec go t acc =
    if t < 2 || Hashtbl.mem seen t then acc
    else begin
      Hashtbl.replace seen t ();
      go m.low_of.(t) (go m.high_of.(t) (acc + 1))
    end
  in
  go t 0

let node_count m = m.n_nodes

let clear_caches m =
  m.bin_cache <- Hashtbl.create 1024;
  m.ite_cache <- Hashtbl.create 256;
  m.not_cache <- Hashtbl.create 256

let pp m fmt t =
  let rec go fmt t =
    if t = 0 then Format.pp_print_string fmt "F"
    else if t = 1 then Format.pp_print_string fmt "T"
    else
      Format.fprintf fmt "@[<hv 1>(x%d?%a:%a)@]" (var_id m t) go
        m.high_of.(t) go m.low_of.(t)
  in
  go fmt t

let transfer ~src ~dst map t =
  let cache = Hashtbl.create 256 in
  let rec go t =
    if t < 2 then t
    else
      match Hashtbl.find_opt cache t with
      | Some r -> r
      | None ->
        let v = map src.var_of.(t) in
        if v < 0 || v >= dst.n_vars then
          invalid_arg "Bdd.transfer: mapped variable out of range";
        let r = ite dst (mk dst v 0 1) (go src.high_of.(t)) (go src.low_of.(t)) in
        Hashtbl.replace cache t r;
        r
  in
  go t
