(** Reduced Ordered Binary Decision Diagrams with hash-consing.

    A {!man} (manager) owns the node store, the unique table and the
    operation caches.  BDD values of different managers must never be
    mixed; this is checked with assertions in debug builds only.

    Variables are dense integers [0 .. nvars-1]; the variable order is
    the integer order.  Terminals and all operations are the textbook
    Bryant constructions (APPLY / ITE with memoization). *)

type man
type t
(** A BDD node handle.  Handles are canonical: two handles of the same
    manager represent the same function iff they are [equal]. *)

val create : ?unique_size:int -> nvars:int -> unit -> man
(** [create ~nvars ()] makes a manager with variables [0..nvars-1]. *)

val nvars : man -> int

val add_var : man -> int
(** Append a fresh variable at the bottom of the order; returns its
    index. *)

val zero : man -> t
val one : man -> t
val var : man -> int -> t
val nvar : man -> int -> t

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val top_var : man -> t -> int
(** Variable at the root. @raise Invalid_argument on terminals. *)

val low : man -> t -> t
val high : man -> t -> t

val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor_ : man -> t -> t -> t
val imp : man -> t -> t -> t
val iff : man -> t -> t -> t
val diff : man -> t -> t -> t
(** [diff m a b] is [a ∧ ¬b]. *)

val ite : man -> t -> t -> t -> t

val and_list : man -> t list -> t
val or_list : man -> t list -> t

val cofactor : man -> t -> var:int -> value:bool -> t

val compose : man -> t -> var:int -> t -> t
(** [compose m f ~var g] substitutes [g] for [var] in [f]. *)

val exists : man -> vars:int list -> t -> t
val forall : man -> vars:int list -> t -> t

val and_exists : man -> vars:int list -> t -> t -> t
(** Relational product: [∃ vars. a ∧ b], computed without building the
    full conjunction. *)

val permute : man -> (int -> int) -> t -> t
(** [permute m p f] renames every variable [v] of [f] to [p v].  The
    mapping need not be order-preserving. *)

val support : man -> t -> int list
(** Variables on which the function depends, ascending. *)

val eval : man -> t -> (int -> bool) -> bool

val sat_count : man -> nvars:int -> t -> float
(** Number of satisfying assignments over the given variable count. *)

val any_sat : man -> t -> (int * bool) list
(** One satisfying path as (variable, value) pairs, ascending variable
    order; variables absent from the list are unconstrained.
    @raise Not_found on the zero BDD. *)

val all_sat : man -> t -> (int * bool) list list
(** All satisfying paths (cubes).  Exponential in the worst case. *)

val fold_sat : man -> t -> init:'a -> f:('a -> (int * bool) list -> 'a) -> 'a
(** Fold {!all_sat} without materialising the list. *)

val size : man -> t -> int
(** Number of internal DAG nodes reachable from the handle. *)

val node_count : man -> int
(** Total nodes ever allocated in the manager (monotone). *)

val clear_caches : man -> unit
(** Drop operation caches (unique table is kept). *)

val pp : man -> Format.formatter -> t -> unit
(** Render as nested ITE text; debugging aid for small BDDs. *)

val transfer : src:man -> dst:man -> (int -> int) -> t -> t
(** Rebuild a function of [src] inside [dst], renaming every variable
    [v] to [map v].  The target order may be arbitrary (the rebuild
    goes through ITE), which makes this the primitive for reordering:
    build a fresh manager with the candidate order and transfer the
    live roots.
    @raise Invalid_argument if a mapped variable is outside [dst]. *)
