lib/sim/parallel_sim.mli: Circuit Fault Satg_circuit Satg_fault Satg_logic Ternary
