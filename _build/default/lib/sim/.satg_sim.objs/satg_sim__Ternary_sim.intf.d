lib/sim/ternary_sim.mli: Circuit Satg_circuit Satg_logic Ternary
