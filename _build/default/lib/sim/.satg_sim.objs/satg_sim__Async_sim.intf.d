lib/sim/async_sim.mli: Circuit Satg_circuit
