lib/sim/timed_sim.ml: Array Circuit List Random Satg_circuit
