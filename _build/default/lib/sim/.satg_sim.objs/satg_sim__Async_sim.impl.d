lib/sim/async_sim.ml: Array Circuit Hashtbl List Queue Satg_circuit Set Stdlib String
