lib/sim/unit_delay.ml: Array Circuit Hashtbl List Satg_circuit
