lib/sim/unit_delay.mli: Circuit Satg_circuit
