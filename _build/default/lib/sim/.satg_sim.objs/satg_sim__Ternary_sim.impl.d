lib/sim/ternary_sim.ml: Array Circuit Satg_circuit Satg_logic Ternary
