lib/sim/parallel_sim.ml: Array Circuit Cover Cube Fault Gatefunc List Satg_circuit Satg_fault Satg_logic Ternary
