lib/sim/timed_sim.mli: Circuit Satg_circuit
