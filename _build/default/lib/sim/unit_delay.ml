open Satg_circuit

type outcome =
  | Settled of bool array * int
  | Oscillates of bool array list

let step c s =
  let s' = Array.copy s in
  Array.iter
    (fun gid -> s'.(gid) <- Circuit.eval_gate c s gid)
    (Circuit.gates c);
  s'

let run c ~max_steps s =
  let seen = Hashtbl.create 64 in
  let rec go i s trace =
    if Circuit.is_stable c s then Settled (s, i)
    else
      let k = Circuit.state_to_string c s in
      match Hashtbl.find_opt seen k with
      | Some j ->
        (* States from step j onwards repeat. *)
        let cycle =
          List.rev trace |> List.filteri (fun idx _ -> idx >= j)
        in
        Oscillates cycle
      | None ->
        if i >= max_steps then Oscillates (List.rev trace)
        else begin
          Hashtbl.replace seen k i;
          go (i + 1) (step c s) (s :: trace)
        end
  in
  go 0 (Array.copy s) []

let apply_vector c ~max_steps s v =
  run c ~max_steps (Circuit.apply_input_vector c s v)
