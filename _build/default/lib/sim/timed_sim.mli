(** Event-driven simulation with concrete bounded inertial delays.

    The paper's §3 argues that test vectors generated under the
    {e unbounded} gate-delay model remain valid on any fabricated chip,
    whatever its actual (bounded) delays: pessimism buys technology
    independence.  This simulator makes that claim checkable — assign
    each gate an arbitrary positive delay, replay a test program, and
    watch every expected response appear.

    Semantics: when a gate becomes excited at time [t], its output is
    scheduled to switch at [t + delay(gate)]; if the excitation goes
    away before that, the pending event is cancelled (inertial delay —
    pulses shorter than the delay are filtered, as in §3). *)

open Satg_circuit

type t

val create : Circuit.t -> delays:float array -> bool array -> t
(** Simulator over the circuit with per-gate delays (indexed by node
    id; entries for environment nodes are ignored), starting from the
    given state at time 0.  If the start state is not stable (a faulty
    circuit powering up), the excited gates fire with their delays
    until quiescence before the simulator is returned.
    @raise Invalid_argument on non-positive gate delays or length
    mismatches. *)

val state : t -> bool array
val now : t -> float

val apply_vector : t -> ?settle_window:float -> bool array -> bool array
(** Drive the environment nodes to the vector, run the event queue
    until quiescence (or until [settle_window] elapses, default
    1000 time units), and return the sampled state. *)

val random_delays : Circuit.t -> seed:int -> float array
(** Uniform delays in [0.5, 1.5] per gate, deterministic in [seed]. *)
