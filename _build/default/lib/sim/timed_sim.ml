open Satg_circuit

type t = {
  circuit : Circuit.t;
  delays : float array;
  state : bool array;
  pending : (float * bool) option array;  (* per gate: (fire time, value) *)
  mutable time : float;
}

let state t = Array.copy t.state
let now t = t.time

(* Re-examine one gate after something in its fanin (or itself)
   changed; schedule, keep, or cancel its pending event (inertial
   semantics). *)
let reexamine t gid =
  let target = Circuit.eval_gate t.circuit t.state gid in
  match t.pending.(gid) with
  | Some (_, v) when v = target -> ()  (* still heading there *)
  | Some _ ->
    (* the excitation vanished before the output moved (binary values:
       target <> scheduled implies target = current): filter the pulse *)
    t.pending.(gid) <- None
  | None ->
    if target <> t.state.(gid) then
      t.pending.(gid) <- Some (t.time +. t.delays.(gid), target)

let reexamine_fanouts t node =
  List.iter (fun g -> reexamine t g) (Circuit.fanouts t.circuit node)

let next_event t =
  let best = ref None in
  Array.iteri
    (fun gid p ->
      match (p, !best) with
      | Some (time, _), None -> best := Some (time, gid)
      | Some (time, _), Some (bt, _) when time < bt -> best := Some (time, gid)
      | _ -> ())
    t.pending;
  !best

let run_until_quiescent t deadline =
  let rec loop () =
    match next_event t with
    | None -> ()
    | Some (time, _) when time > deadline -> ()
    | Some (time, gid) ->
      let value =
        match t.pending.(gid) with
        | Some (_, v) -> v
        | None -> assert false
      in
      t.time <- time;
      t.pending.(gid) <- None;
      t.state.(gid) <- value;
      (* the gate itself may be re-excited (state-holding functions),
         and so may its readers *)
      reexamine t gid;
      reexamine_fanouts t gid;
      loop ()
  in
  loop ()

let create circuit ~delays s =
  if Array.length delays <> Circuit.n_nodes circuit then
    invalid_arg "Timed_sim.create: delays length mismatch";
  if Array.length s <> Circuit.n_nodes circuit then
    invalid_arg "Timed_sim.create: state length mismatch";
  Array.iter
    (fun gid ->
      if delays.(gid) <= 0.0 then
        invalid_arg "Timed_sim.create: non-positive gate delay")
    (Circuit.gates circuit);
  let t =
    {
      circuit;
      delays = Array.copy delays;
      state = Array.copy s;
      pending = Array.make (Circuit.n_nodes circuit) None;
      time = 0.0;
    }
  in
  (* Power-up settling: a faulty circuit may start excited. *)
  Array.iter (fun gid -> reexamine t gid) (Circuit.gates circuit);
  run_until_quiescent t 1000.0;
  t

let apply_vector t ?(settle_window = 1000.0) v =
  if Array.length v <> Circuit.n_inputs t.circuit then
    invalid_arg "Timed_sim.apply_vector: wrong vector length";
  let deadline = t.time +. settle_window in
  Array.iteri
    (fun k env ->
      if t.state.(env) <> v.(k) then begin
        t.state.(env) <- v.(k);
        reexamine_fanouts t env
      end)
    (Circuit.inputs t.circuit);
  run_until_quiescent t deadline;
  Array.copy t.state

let random_delays circuit ~seed =
  let rng = Random.State.make [| seed |] in
  Array.init (Circuit.n_nodes circuit) (fun _ ->
      0.5 +. Random.State.float rng 1.0)
