open Satg_logic
open Satg_circuit

type state = Ternary.t array

let of_bool_state s = Array.map Ternary.of_bool s

let to_bool_state_opt s =
  if Ternary.vector_is_binary s then
    Some (Array.map (fun v -> v = Ternary.One) s)
  else None

(* Chaotic iteration to a fixpoint.  [update] computes the new value of
   a gate from the current state; both algorithms are monotone in the
   information order, so sweeping until quiescence terminates in at
   most [n_gates + 1] rounds per direction change. *)
let fixpoint c update s =
  let s = Array.copy s in
  let changed = ref true in
  let rounds = ref 0 in
  let budget = (2 * Circuit.n_gates c) + 2 in
  while !changed do
    changed := false;
    incr rounds;
    assert (!rounds <= budget);
    Array.iter
      (fun gid ->
        let v = update s gid in
        if not (Ternary.equal v s.(gid)) then begin
          s.(gid) <- v;
          changed := true
        end)
      (Circuit.gates c)
  done;
  s

let algorithm_a c s =
  fixpoint c
    (fun s gid -> Ternary.lub s.(gid) (Circuit.eval_gate_ternary c s gid))
    s

let algorithm_b c s = fixpoint c (fun s gid -> Circuit.eval_gate_ternary c s gid) s

let set_inputs c s v =
  let s = Array.copy s in
  Array.iteri (fun k env -> s.(env) <- v.(k)) (Circuit.inputs c);
  s

let apply_vector_ternary c s v =
  if Array.length v <> Circuit.n_inputs c then
    invalid_arg "Ternary_sim.apply_vector: wrong vector length";
  let old = Array.map (fun env -> s.(env)) (Circuit.inputs c) in
  let blurred = Ternary.vector_lub old v in
  let s = algorithm_a c (set_inputs c s blurred) in
  algorithm_b c (set_inputs c s v)

let apply_vector c s v =
  apply_vector_ternary c s (Array.map Ternary.of_bool v)

let outputs c s = Array.map (fun o -> s.(o)) (Circuit.outputs c)
