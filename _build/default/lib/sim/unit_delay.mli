(** Unit-delay simulation: every excited gate fires simultaneously at
    each time step.  This is the (optimistic) validation model used by
    the synchronous-ATPG baseline of Banerjee et al. — it can detect
    oscillation but sees only one interleaving, so it misses
    non-confluence (paper §6.1). *)

open Satg_circuit

type outcome =
  | Settled of bool array * int  (** stable state and steps taken *)
  | Oscillates of bool array list  (** the repeating cycle of states *)

val step : Circuit.t -> bool array -> bool array
(** Fire all excited gates at once. *)

val run : Circuit.t -> max_steps:int -> bool array -> outcome
(** Iterate {!step} until stable or a state repeats.  [max_steps] only
    guards against pathological non-repetition (state spaces are
    finite, so a repeat always occurs); on exhaustion the trailing
    states are reported as an oscillation. *)

val apply_vector : Circuit.t -> max_steps:int -> bool array -> bool array -> outcome
