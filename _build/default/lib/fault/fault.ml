open Satg_circuit

type t =
  | Input_sa of {
      gate : int;
      pin : int;
      stuck : bool;
    }
  | Output_sa of {
      gate : int;
      stuck : bool;
    }

let equal a b = a = b
let compare = Stdlib.compare

let universe_input_sa c =
  Array.fold_right
    (fun gid acc ->
      let pins = Array.length (Circuit.fanins c gid) in
      let rec per_pin p acc =
        if p < 0 then acc
        else
          per_pin (p - 1)
            (Input_sa { gate = gid; pin = p; stuck = false }
            :: Input_sa { gate = gid; pin = p; stuck = true }
            :: acc)
      in
      per_pin (pins - 1) acc)
    (Circuit.gates c) []

let universe_output_sa c =
  Array.fold_right
    (fun gid acc ->
      Output_sa { gate = gid; stuck = false }
      :: Output_sa { gate = gid; stuck = true }
      :: acc)
    (Circuit.gates c) []

let site_signal c = function
  | Input_sa { gate; pin; _ } -> (Circuit.fanins c gate).(pin)
  | Output_sa { gate; _ } -> gate

let stuck_value = function
  | Input_sa { stuck; _ } | Output_sa { stuck; _ } -> stuck

let inject c = function
  | Output_sa { gate; stuck } ->
    Circuit.without_initial (Circuit.replace_func c ~gate (Gatefunc.Const stuck))
  | Input_sa { gate; pin; stuck } ->
    let c, const = Circuit.add_const_node c stuck in
    Circuit.without_initial (Circuit.retarget_pin c ~gate ~pin const)

let initial_faulty_state c f reset =
  let n = Circuit.n_nodes c in
  if Array.length reset <> n then
    invalid_arg "Fault.initial_faulty_state: bad reset length";
  match f with
  | Output_sa { gate; stuck } ->
    let s = Array.copy reset in
    s.(gate) <- stuck;
    s
  | Input_sa { stuck; _ } ->
    (* injection adds one constant node at the end *)
    Array.append reset [| stuck |]

(* Structural collapsing.  Two families of classic equivalences:
   - an input stuck at the gate's controlling value is equivalent to the
     output stuck at the forced value (AND in-0 = out-0, OR in-1 = out-1,
     NAND in-0 = out-1, NOR in-1 = out-0);
   - for BUF / NOT every input fault is equivalent to an output fault.
   Representatives are chosen as the output faults. *)
let representative c f =
  match f with
  | Output_sa _ -> f
  | Input_sa { gate; pin = _; stuck } -> (
    match Circuit.func c gate with
    | Gatefunc.Buf -> Output_sa { gate; stuck }
    | Gatefunc.Not -> Output_sa { gate; stuck = not stuck }
    | Gatefunc.And when not stuck -> Output_sa { gate; stuck = false }
    | Gatefunc.Nand when not stuck -> Output_sa { gate; stuck = true }
    | Gatefunc.Or when stuck -> Output_sa { gate; stuck = true }
    | Gatefunc.Nor when stuck -> Output_sa { gate; stuck = false }
    | Gatefunc.And | Gatefunc.Nand | Gatefunc.Or | Gatefunc.Nor
    | Gatefunc.Xor | Gatefunc.Xnor | Gatefunc.Mux | Gatefunc.Celem
    | Gatefunc.Const _ | Gatefunc.Sop _ ->
      f)

let collapse c faults =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun f ->
      let r = representative c f in
      if Hashtbl.mem seen r then false
      else begin
        Hashtbl.replace seen r ();
        true
      end)
    faults

let to_string c = function
  | Input_sa { gate; pin; stuck } ->
    Printf.sprintf "%s.pin%d(%s)/sa%d" (Circuit.node_name c gate) pin
      (Circuit.node_name c (Circuit.fanins c gate).(pin))
      (if stuck then 1 else 0)
  | Output_sa { gate; stuck } ->
    Printf.sprintf "%s/sa%d" (Circuit.node_name c gate) (if stuck then 1 else 0)

let pp c fmt f = Format.pp_print_string fmt (to_string c f)
