lib/fault/fault.ml: Array Circuit Format Gatefunc Hashtbl List Printf Satg_circuit Stdlib
