lib/fault/fault.mli: Circuit Format Satg_circuit
