(* Bechamel benchmarks: one measured workload per paper artefact
   (tables 1 and 2, the figure-1 pathologies, the section-6.1 baseline)
   plus microbenchmarks of every substrate the artefacts are built on.

     dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Satg_logic
open Satg_bdd
open Satg_circuit
open Satg_fault
open Satg_sim
open Satg_sg
open Satg_stg
open Satg_core
open Satg_bench

let get_entry name = Option.get (Suite.find name)

let get_circuit synth name =
  match synth (get_entry name) with
  | Ok c -> c
  | Error m -> failwith m

(* --- substrate microbenches ---------------------------------------------- *)

let bench_bdd =
  Test.make ~name:"bdd/relational-product"
    (Staged.stage (fun () ->
         let m = Bdd.create ~nvars:24 () in
         let rel = ref (Bdd.one m) in
         for i = 0 to 7 do
           rel :=
             Bdd.and_ m !rel
               (Bdd.iff m (Bdd.var m (3 * i)) (Bdd.var m ((3 * i) + 1)))
         done;
         let src = Bdd.var m 0 in
         ignore
           (Bdd.and_exists m
              ~vars:(List.init 8 (fun i -> 3 * i))
              src !rel)))

let bench_qm =
  Test.make ~name:"logic/quine-mccluskey"
    (Staged.stage (fun () ->
         ignore (Qm.minimize ~n:4 ~on:[ 4; 8; 10; 11; 12; 15 ] ~dc:[ 9; 14 ]);
         ignore
           (Qm.minimize ~n:6
              ~on:[ 0; 3; 5; 9; 17; 21; 29; 33; 41; 45; 53; 61; 62 ]
              ~dc:[ 2; 12; 22; 32; 42; 52 ])))

let bench_ternary =
  let c = get_circuit Suite.speed_independent "master-read" in
  let reset = Option.get (Circuit.initial c) in
  Test.make ~name:"sim/ternary-test-cycle"
    (Staged.stage (fun () ->
         ignore
           (Ternary_sim.apply_vector c
              (Ternary_sim.of_bool_state reset)
              [| true; false; false |])))

let bench_parallel =
  let c = get_circuit Suite.speed_independent "master-read" in
  let reset = Option.get (Circuit.initial c) in
  let faults = Array.of_list (Fault.universe_input_sa c) in
  let faults = Array.sub faults 0 (min 62 (Array.length faults)) in
  Test.make ~name:"sim/parallel-fault-pack"
    (Staged.stage (fun () ->
         let pack = Parallel_sim.create c faults ~reset in
         Parallel_sim.apply_vector pack [| true; false; false |];
         Parallel_sim.apply_vector pack [| true; true; false |]))

let bench_exact_exploration =
  let c = Figures.mutex_latch () in
  let reset = Option.get (Circuit.initial c) in
  Test.make ~name:"sim/exact-exploration"
    (Staged.stage (fun () ->
         ignore (Async_sim.apply_vector c ~k:24 reset [| true; true |])))

let bench_stg =
  let e = get_entry "ebergen" in
  Test.make ~name:"stg/explore+synthesize"
    (Staged.stage (fun () ->
         match Synth.complex_gate e.Suite.stg with
         | Ok _ -> ()
         | Error m -> failwith m))

let bench_symbolic =
  let c = Figures.celem_handshake () in
  Test.make ~name:"sg/symbolic-cssg"
    (Staged.stage (fun () -> ignore (Symbolic.build c)))

(* --- figure artefacts ------------------------------------------------------ *)

let bench_fig1a =
  let c = Figures.fig1a () in
  let reset = Option.get (Circuit.initial c) in
  Test.make ~name:"fig1a/non-confluence-detection"
    (Staged.stage (fun () ->
         match Async_sim.apply_vector c ~k:64 reset [| true; false |] with
         | Async_sim.Non_confluent _ -> ()
         | _ -> failwith "fig1a misclassified"))

let bench_fig1b =
  let c = Figures.fig1b () in
  let reset = Option.get (Circuit.initial c) in
  Test.make ~name:"fig1b/oscillation-detection"
    (Staged.stage (fun () ->
         match Async_sim.classify_vector c ~k:64 reset [| true |] with
         | Async_sim.C_invalid _ -> ()
         | _ -> failwith "fig1b misclassified"))

let bench_fig2 =
  let c = Figures.mutex_latch () in
  Test.make ~name:"fig2/cssg-construction"
    (Staged.stage (fun () -> ignore (Explicit.build c)))

(* --- table artefacts ------------------------------------------------------- *)

(* One full table row (synthesis done): CSSG + ATPG on both universes. *)
let table_row circuit () =
  let g = Explicit.build circuit in
  let out_r =
    Engine.run ~cssg:g circuit ~faults:(Fault.universe_output_sa circuit)
  in
  let in_r =
    Engine.run ~cssg:g circuit ~faults:(Fault.universe_input_sa circuit)
  in
  ignore (Engine.detected out_r + Engine.detected in_r)

let bench_table1_small =
  let c = get_circuit Suite.speed_independent "vbe6a" in
  Test.make ~name:"table1/row-vbe6a" (Staged.stage (table_row c))

let bench_table1_large =
  let c = get_circuit Suite.speed_independent "master-read" in
  Test.make ~name:"table1/row-master-read" (Staged.stage (table_row c))

let bench_table2_clean =
  let c = get_circuit Suite.bounded_delay "hazard" in
  Test.make ~name:"table2/row-hazard" (Staged.stage (table_row c))

let bench_table2_redundant =
  (* the redundancy showcase: undetectable-fault searches dominate *)
  let c = get_circuit Suite.bounded_delay "vbe6a" in
  Test.make ~name:"table2/row-vbe6a-redundant" (Staged.stage (table_row c))

let bench_timed_replay =
  let c = get_circuit Suite.speed_independent "ebergen" in
  let reset = Option.get (Circuit.initial c) in
  let delays = Timed_sim.random_delays c ~seed:9 in
  Test.make ~name:"sim/timed-burst-replay"
    (Staged.stage (fun () ->
         let sim = Timed_sim.create c ~delays reset in
         ignore (Timed_sim.apply_vector sim [| true; false |]);
         ignore (Timed_sim.apply_vector sim [| false; false |])))

let bench_delay_fault =
  let c = get_circuit Suite.speed_independent "vbe6a" in
  let g = Explicit.build c in
  Test.make ~name:"delay/row-vbe6a"
    (Staged.stage (fun () -> ignore (Delay_fault.run g)))

let bench_baseline =
  let c = get_circuit Suite.speed_independent "vbe6a" in
  let g = Explicit.build c in
  let faults = Fault.universe_output_sa c in
  Test.make ~name:"baseline/row-vbe6a"
    (Staged.stage (fun () -> ignore (Baseline.run c ~cssg:g ~faults)))

(* --- driver ---------------------------------------------------------------- *)

let tests =
  Test.make_grouped ~name:"satg"
    [
      bench_bdd; bench_qm; bench_ternary; bench_parallel;
      bench_exact_exploration; bench_stg; bench_symbolic; bench_fig1a;
      bench_fig1b; bench_fig2; bench_table1_small; bench_table1_large;
      bench_table2_clean; bench_table2_redundant; bench_timed_replay;
      bench_delay_fault; bench_baseline;
    ]

let () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let pretty ns =
    if ns >= 1e9 then Printf.sprintf "%10.3f s " (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
    else Printf.sprintf "%10.1f ns" ns
  in
  Printf.printf "%-42s %12s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 56 '-');
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some (t :: _) -> Printf.printf "%-42s %12s\n" name (pretty t)
         | Some [] | None -> Printf.printf "%-42s %12s\n" name "n/a")
