test/test_circuit.ml: Alcotest Array Circuit Fault Figures Gatefunc List Option Parser Printf Satg_bench Satg_circuit Satg_fault Satg_logic String Structure Ternary
