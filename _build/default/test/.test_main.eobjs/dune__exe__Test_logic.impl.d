test/test_logic.ml: Alcotest Array Cover Cube Fun List Printf QCheck QCheck_alcotest Qm Satg_logic String Ternary
