test/test_stg.ml: Alcotest Array Circuit Cover Cssg Cube Explicit Gatefunc List Printf Satg_bench Satg_circuit Satg_logic Satg_sg Satg_stg Stdlib Stg String Synth Ternary
