test/test_sg.ml: Alcotest Array Bdd Circuit Cssg Explicit Figures Fun List Option Satg_bdd Satg_bench Satg_circuit Satg_sg Stdlib String Structure Symbolic
