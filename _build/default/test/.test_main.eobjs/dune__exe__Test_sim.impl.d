test/test_sim.ml: Alcotest Array Async_sim Circuit Fault Figures List Option Parallel_sim Printf Satg_bench Satg_circuit Satg_fault Satg_logic Satg_sim Stdlib Structure Ternary Ternary_sim Unit_delay
