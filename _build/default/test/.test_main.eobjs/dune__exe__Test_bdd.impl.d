test/test_bdd.ml: Alcotest Array Bdd Float List Option Printf QCheck QCheck_alcotest Satg_bdd
