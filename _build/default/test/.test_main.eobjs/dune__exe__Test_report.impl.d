test/test_report.ml: Alcotest List Satg_report String Table
