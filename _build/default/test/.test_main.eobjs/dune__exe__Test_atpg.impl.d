test/test_atpg.ml: Alcotest Baseline Circuit Detect Engine Explicit Fault Figures List Option Random_tpg Satg_bench Satg_circuit Satg_core Satg_fault Satg_sg Testset Three_phase
