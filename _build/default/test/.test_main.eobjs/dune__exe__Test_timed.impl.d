test/test_timed.ml: Alcotest Array Async_sim Circuit Engine Fault Figures List Option Printf Satg_bench Satg_circuit Satg_core Satg_fault Satg_sim Suite Tester Timed_sim
