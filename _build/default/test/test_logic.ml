(* Tests for the logic substrate: ternary algebra, cubes, covers and the
   Quine-McCluskey minimizer. *)

open Satg_logic

let tern = Alcotest.testable Ternary.pp Ternary.equal

let all_ternary = Ternary.[ Zero; One; Phi ]

let check_tern = Alcotest.check tern

(* --- Ternary ----------------------------------------------------------- *)

let test_ternary_basic () =
  check_tern "not 0" Ternary.One (Ternary.not_ Ternary.Zero);
  check_tern "not phi" Ternary.Phi (Ternary.not_ Ternary.Phi);
  check_tern "0 and phi" Ternary.Zero (Ternary.and_ Ternary.Zero Ternary.Phi);
  check_tern "1 and phi" Ternary.Phi (Ternary.and_ Ternary.One Ternary.Phi);
  check_tern "1 or phi" Ternary.One (Ternary.or_ Ternary.One Ternary.Phi);
  check_tern "0 or phi" Ternary.Phi (Ternary.or_ Ternary.Zero Ternary.Phi);
  check_tern "phi xor 1" Ternary.Phi (Ternary.xor_ Ternary.Phi Ternary.One);
  check_tern "lub 0 1" Ternary.Phi (Ternary.lub Ternary.Zero Ternary.One);
  check_tern "lub 1 1" Ternary.One (Ternary.lub Ternary.One Ternary.One)

let test_ternary_monotone () =
  (* Every operator is monotone w.r.t. the information ordering: refining
     Phi to a binary value can only refine the result. *)
  let refinements = function
    | Ternary.Phi -> all_ternary
    | v -> [ v ]
  in
  let ops =
    [ ("and", Ternary.and_); ("or", Ternary.or_); ("xor", Ternary.xor_) ]
  in
  List.iter
    (fun (name, op) ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let coarse = op a b in
              List.iter
                (fun a' ->
                  List.iter
                    (fun b' ->
                      let fine = op a' b' in
                      Alcotest.(check bool)
                        (Printf.sprintf "%s monotone" name)
                        true
                        (Ternary.leq fine coarse))
                    (refinements b))
                (refinements a))
            all_ternary)
        all_ternary)
    ops

let test_ternary_strings () =
  let v = Ternary.vector_of_string "10X" in
  Alcotest.(check string) "roundtrip" "10X" (Ternary.vector_to_string v);
  Alcotest.(check bool) "binary" false (Ternary.vector_is_binary v);
  Alcotest.(check bool)
    "binary yes" true
    (Ternary.vector_is_binary (Ternary.vector_of_string "0101"));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Ternary.vector_of_string: bad char '2' at 1")
    (fun () -> ignore (Ternary.vector_of_string "12"))

let test_ternary_lub_vector () =
  let a = Ternary.vector_of_string "0011" in
  let b = Ternary.vector_of_string "0101" in
  Alcotest.(check string)
    "lub" "0XX1"
    (Ternary.vector_to_string (Ternary.vector_lub a b))

(* --- Cube -------------------------------------------------------------- *)

let test_cube_roundtrip () =
  let c = Cube.of_string "1-0" in
  Alcotest.(check string) "to_string" "1-0" (Cube.to_string c);
  Alcotest.(check int) "size" 3 (Cube.size c);
  Alcotest.(check int) "literals" 2 (Cube.num_literals c)

let test_cube_contains () =
  let c = Cube.of_string "1-0" in
  Alcotest.(check bool) "100" true (Cube.contains_minterm c 0b100);
  Alcotest.(check bool) "110" true (Cube.contains_minterm c 0b110);
  Alcotest.(check bool) "111" false (Cube.contains_minterm c 0b111);
  Alcotest.(check bool) "000" false (Cube.contains_minterm c 0b000);
  Alcotest.(check bool)
    "vector" true
    (Cube.contains_vector c [| true; false; false |])

let test_cube_minterm_msb () =
  (* Variable 0 is the most significant bit. *)
  let c = Cube.of_minterm 3 0b101 in
  Alcotest.(check string) "of_minterm" "101" (Cube.to_string c)

let test_cube_ops () =
  let a = Cube.of_string "1--" and b = Cube.of_string "-0-" in
  (match Cube.intersect a b with
  | Some i -> Alcotest.(check string) "intersect" "10-" (Cube.to_string i)
  | None -> Alcotest.fail "expected intersection");
  (match Cube.intersect (Cube.of_string "1--") (Cube.of_string "0--") with
  | Some _ -> Alcotest.fail "expected disjoint"
  | None -> ());
  Alcotest.(check string)
    "supercube" "1--"
    (Cube.to_string (Cube.supercube (Cube.of_string "10-") (Cube.of_string "11-")));
  Alcotest.(check bool) "covers" true (Cube.covers a (Cube.of_string "101"));
  Alcotest.(check bool) "covers not" false (Cube.covers (Cube.of_string "101") a)

let test_cube_cofactor () =
  let c = Cube.of_string "1-0" in
  (match Cube.cofactor c ~var:0 ~value:true with
  | Some c' -> Alcotest.(check string) "pos" "--0" (Cube.to_string c')
  | None -> Alcotest.fail "expected cofactor");
  (match Cube.cofactor c ~var:0 ~value:false with
  | Some _ -> Alcotest.fail "incompatible cofactor should be None"
  | None -> ())

let test_cube_minterms () =
  let c = Cube.of_string "1-0" in
  Alcotest.(check (list int)) "minterms" [ 0b100; 0b110 ] (Cube.minterms c)

let test_cube_eval_ternary () =
  let c = Cube.of_string "1-0" in
  check_tern "all binary in-cube" Ternary.One
    (Cube.eval_ternary c (Ternary.vector_of_string "110"));
  check_tern "off" Ternary.Zero
    (Cube.eval_ternary c (Ternary.vector_of_string "010"));
  check_tern "uncertain literal" Ternary.Phi
    (Cube.eval_ternary c (Ternary.vector_of_string "X10"));
  check_tern "dc uncertain still on" Ternary.One
    (Cube.eval_ternary c (Ternary.vector_of_string "1X0"))

(* --- Cover ------------------------------------------------------------- *)

let test_cover_eval () =
  let f = Cover.make ~n:3 [ Cube.of_string "11-"; Cube.of_string "--1" ] in
  Alcotest.(check bool) "110" true (Cover.eval_minterm f 0b110);
  Alcotest.(check bool) "001" true (Cover.eval_minterm f 0b001);
  Alcotest.(check bool) "010" false (Cover.eval_minterm f 0b010);
  Alcotest.(check (list int))
    "minterms" [ 1; 3; 5; 6; 7 ] (Cover.minterms f)

let test_cover_ternary_hazard () =
  (* f = a b + !a c evaluated at a=Phi, b=c=1: the SOP ternary value is Phi
     (the classic static-1 hazard), even though the boolean function is 1
     for both values of a. *)
  let f = Cover.make ~n:3 [ Cube.of_string "11-"; Cube.of_string "0-1" ] in
  check_tern "hazard visible" Ternary.Phi
    (Cover.eval_ternary f [| Ternary.Phi; Ternary.One; Ternary.One |]);
  (* Adding the consensus term b c makes the ternary evaluation 1. *)
  let g = Cover.add_cube f (Cube.of_string "-11") in
  check_tern "consensus kills hazard" Ternary.One
    (Cover.eval_ternary g [| Ternary.Phi; Ternary.One; Ternary.One |])

let test_cover_irredundant () =
  let f =
    Cover.make ~n:3
      [ Cube.of_string "11-"; Cube.of_string "111"; Cube.of_string "--1" ]
  in
  let g = Cover.irredundant f in
  Alcotest.(check int) "dropped contained cube" 2 (Cover.cube_count g);
  Alcotest.(check bool) "same function" true (Cover.equal_semantics f g)

(* --- Quine-McCluskey ---------------------------------------------------- *)

let test_qm_textbook () =
  (* Classic example: f(a,b,c,d) on {4,8,10,11,12,15}, dc {9,14}.
     Minimal covers have 3 product terms. *)
  let on = [ 4; 8; 10; 11; 12; 15 ] and dc = [ 9; 14 ] in
  let cover = Qm.minimize ~n:4 ~on ~dc in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "on %d covered" m)
        true
        (Cover.eval_minterm cover m))
    on;
  List.iter
    (fun m ->
      if not (List.mem m on || List.mem m dc) then
        Alcotest.(check bool)
          (Printf.sprintf "off %d not covered" m)
          false
          (Cover.eval_minterm cover m))
    (List.init 16 Fun.id);
  Alcotest.(check int) "3 cubes" 3 (Cover.cube_count cover)

let test_qm_constant () =
  let c = Qm.minimize ~n:3 ~on:(List.init 8 Fun.id) ~dc:[] in
  Alcotest.(check int) "tautology is one cube" 1 (Cover.cube_count c);
  Alcotest.(check string)
    "universe" "---"
    (Cube.to_string (List.hd (Cover.cubes c)));
  let z = Qm.minimize ~n:3 ~on:[] ~dc:[ 1; 2 ] in
  Alcotest.(check bool) "empty on-set" true (Cover.is_empty z)

let test_qm_xor () =
  (* XOR has no merging opportunities: expect 2^(n-1) full cubes. *)
  let n = 3 in
  let on = List.filter (fun m ->
      let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
      pop m mod 2 = 1)
      (List.init (1 lsl n) Fun.id)
  in
  let cover = Qm.minimize ~n ~on ~dc:[] in
  Alcotest.(check int) "4 cubes" 4 (Cover.cube_count cover);
  List.iter
    (fun c -> Alcotest.(check int) "full cube" n (Cube.num_literals c))
    (Cover.cubes cover)

let test_qm_primes () =
  (* f = sum(0,1,2,3) over 2 vars: single prime "--". *)
  let ps = Qm.primes ~n:2 ~on:[ 0; 1; 2; 3 ] ~dc:[] in
  Alcotest.(check (list string))
    "single prime" [ "--" ]
    (List.map Cube.to_string ps)

let test_qm_bad_args () =
  Alcotest.check_raises "minterm range"
    (Invalid_argument "Qm: minterm out of range") (fun () ->
      ignore (Qm.minimize ~n:2 ~on:[ 4 ] ~dc:[]));
  Alcotest.check_raises "var count"
    (Invalid_argument "Qm: variable count out of [0, 24]") (fun () ->
      ignore (Qm.minimize ~n:25 ~on:[] ~dc:[]))

(* Property: on random functions, the QM cover equals the function on the
   on-set, avoids the off-set, and every selected cube is prime (covered
   by no strictly larger implicant of on ∪ dc). *)
let prop_qm_correct =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let* assigns = array_size (return (1 lsl n)) (int_range 0 2) in
      return (n, assigns))
  in
  let arb =
    QCheck.make gen ~print:(fun (n, a) ->
        Printf.sprintf "n=%d f=%s" n
          (String.concat ""
             (Array.to_list (Array.map string_of_int a))))
  in
  QCheck.Test.make ~name:"qm cover is correct and on-only" ~count:300 arb
    (fun (n, assigns) ->
      let value m = assigns.(m) in
      let on =
        List.filter (fun m -> value m = 1) (List.init (1 lsl n) Fun.id)
      and dc =
        List.filter (fun m -> value m = 2) (List.init (1 lsl n) Fun.id)
      in
      let cover = Qm.minimize ~n ~on ~dc in
      List.for_all
        (fun m ->
          let v = Cover.eval_minterm cover m in
          match value m with
          | 1 -> v
          | 0 -> not v
          | _ -> true)
        (List.init (1 lsl n) Fun.id))

let prop_qm_minimize_f_agrees =
  QCheck.Test.make ~name:"minimize_f agrees with minimize" ~count:100
    QCheck.(pair (int_range 1 4) (int_bound 0xFFFF))
    (fun (n, bits) ->
      let f m = Some (bits land (1 lsl m) <> 0) in
      let on =
        List.filter (fun m -> bits land (1 lsl m) <> 0)
          (List.init (1 lsl n) Fun.id)
      in
      let a = Qm.minimize_f ~n f and b = Qm.minimize ~n ~on ~dc:[] in
      Cover.equal_semantics a b)

let test_qm_degenerate_sizes () =
  (* n = 0: the only minterm is 0; the cover is the empty-width cube. *)
  let c = Qm.minimize ~n:0 ~on:[ 0 ] ~dc:[] in
  Alcotest.(check int) "one cube" 1 (Cover.cube_count c);
  Alcotest.(check bool) "covers it" true (Cover.eval_minterm c 0);
  (* n = 1 identity *)
  let c = Qm.minimize ~n:1 ~on:[ 1 ] ~dc:[] in
  Alcotest.(check (list string)) "single literal" [ "1" ]
    (List.map Cube.to_string (Cover.cubes c))

let test_cover_width_mismatch () =
  Alcotest.check_raises "add_cube"
    (Invalid_argument "Cover.add_cube: width mismatch") (fun () ->
      ignore (Cover.add_cube (Cover.empty 2) (Cube.of_string "101")))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_qm_correct; prop_qm_minimize_f_agrees ]

let suites =
  [
    ( "logic.ternary",
      [
        Alcotest.test_case "basic ops" `Quick test_ternary_basic;
        Alcotest.test_case "monotonicity" `Quick test_ternary_monotone;
        Alcotest.test_case "string io" `Quick test_ternary_strings;
        Alcotest.test_case "vector lub" `Quick test_ternary_lub_vector;
      ] );
    ( "logic.cube",
      [
        Alcotest.test_case "roundtrip" `Quick test_cube_roundtrip;
        Alcotest.test_case "contains" `Quick test_cube_contains;
        Alcotest.test_case "msb convention" `Quick test_cube_minterm_msb;
        Alcotest.test_case "intersect/supercube/covers" `Quick test_cube_ops;
        Alcotest.test_case "cofactor" `Quick test_cube_cofactor;
        Alcotest.test_case "minterms" `Quick test_cube_minterms;
        Alcotest.test_case "ternary eval" `Quick test_cube_eval_ternary;
      ] );
    ( "logic.cover",
      [
        Alcotest.test_case "eval" `Quick test_cover_eval;
        Alcotest.test_case "ternary hazard" `Quick test_cover_ternary_hazard;
        Alcotest.test_case "irredundant" `Quick test_cover_irredundant;
        Alcotest.test_case "width mismatch" `Quick test_cover_width_mismatch;
      ] );
    ( "logic.qm",
      [
        Alcotest.test_case "textbook" `Quick test_qm_textbook;
        Alcotest.test_case "constants" `Quick test_qm_constant;
        Alcotest.test_case "xor" `Quick test_qm_xor;
        Alcotest.test_case "primes" `Quick test_qm_primes;
        Alcotest.test_case "bad args" `Quick test_qm_bad_args;
        Alcotest.test_case "degenerate sizes" `Quick test_qm_degenerate_sizes;
      ]
      @ qcheck_cases );
  ]
