(* Tests for the bounded-delay event simulator, including the paper's
   §3 robustness claim: tests generated under unbounded delays keep
   working for any concrete delay assignment. *)

open Satg_circuit
open Satg_fault
open Satg_sim
open Satg_core
open Satg_bench

let reset c = Option.get (Circuit.initial c)

let test_valid_vector_matches_exact () =
  (* On a valid CSSG edge every delay assignment must reach the unique
     settling state the exact engine predicts. *)
  let c = Figures.celem_handshake () in
  List.iter
    (fun seed ->
      let sim = Timed_sim.create c ~delays:(Timed_sim.random_delays c ~seed) (reset c) in
      let timed = Timed_sim.apply_vector sim [| true; true |] in
      match Async_sim.apply_vector c ~k:64 (reset c) [| true; true |] with
      | Async_sim.Settles s ->
        Alcotest.(check string) (Printf.sprintf "seed %d" seed)
          (Circuit.state_to_string c s)
          (Circuit.state_to_string c timed)
      | _ -> Alcotest.fail "expected settle")
    [ 1; 2; 3; 42; 1000 ]

let test_race_is_delay_dependent () =
  (* fig1a's racing vector: a fast AND gate lets the pulse through and
     sets the latch; a slow AND gets filtered.  Both outcomes are
     members of the exact engine's non-confluent set. *)
  let c = Figures.fig1a () in
  let y = Option.get (Circuit.find_node c "y") in
  let and_gate = Option.get (Circuit.find_node c "c") in
  let b_buf = Option.get (Circuit.find_node c "B") in
  let with_delays f =
    let d = Array.make (Circuit.n_nodes c) 1.0 in
    f d;
    let sim = Timed_sim.create c ~delays:d (reset c) in
    (Timed_sim.apply_vector sim [| true; false |]).(y)
  in
  let fast_and =
    with_delays (fun d ->
        d.(and_gate) <- 0.1;
        d.(y) <- 0.1;
        d.(b_buf) <- 3.0)
  in
  let slow_and = with_delays (fun d -> d.(and_gate) <- 5.0) in
  Alcotest.(check bool) "pulse captured" true fast_and;
  Alcotest.(check bool) "pulse filtered" false slow_and;
  match Async_sim.apply_vector c ~k:64 (reset c) [| true; false |] with
  | Async_sim.Non_confluent finals ->
    let ys = List.map (fun s -> s.(y)) finals |> List.sort_uniq compare in
    Alcotest.(check (list bool)) "both outcomes predicted" [ false; true ] ys
  | _ -> Alcotest.fail "expected non-confluence"

let test_oscillator_hits_window () =
  let c = Figures.fig1b () in
  let sim = Timed_sim.create c ~delays:(Timed_sim.random_delays c ~seed:7) (reset c) in
  let s = Timed_sim.apply_vector sim ~settle_window:50.0 [| true |] in
  (* It never settles; we just sample whatever it was doing and check
     the clock advanced to the window. *)
  Alcotest.(check bool) "time advanced" true (Timed_sim.now sim >= 40.0);
  Alcotest.(check int) "state size" (Circuit.n_nodes c) (Array.length s)

let test_program_robust_under_delays () =
  (* The §3 claim, end to end: generate a tester program, then for
     several random delay assignments (a) the good chip produces every
     expected response and (b) every targeted faulty chip mismatches
     somewhere in its burst. *)
  List.iter
    (fun name ->
      let e = Option.get (Suite.find name) in
      let c =
        match Suite.speed_independent e with
        | Ok c -> c
        | Error m -> Alcotest.fail m
      in
      let r = Engine.run c ~faults:(Fault.universe_input_sa c) in
      let program = Tester.of_result r in
      List.iter
        (fun seed ->
          (* (a) good chip *)
          List.iter
            (fun burst ->
              let sim =
                Timed_sim.create c ~delays:(Timed_sim.random_delays c ~seed)
                  (reset c)
              in
              List.iter
                (fun step ->
                  let s = Timed_sim.apply_vector sim step.Tester.inputs in
                  Alcotest.(check (array bool))
                    (Printf.sprintf "%s seed %d good response" name seed)
                    step.Tester.expected
                    (Circuit.output_values c s))
                burst.Tester.steps)
            program.Tester.bursts;
          (* (b) faulty chips *)
          List.iter
            (fun burst ->
              List.iter
                (fun f ->
                  let fc = Fault.inject c f in
                  let sim =
                    Timed_sim.create fc
                      ~delays:(Timed_sim.random_delays fc ~seed)
                      (Fault.initial_faulty_state c f (reset c))
                  in
                  let mismatch =
                    (* observed at reset or after some step *)
                    (Array.map (fun o -> (Timed_sim.state sim).(o))
                       (Circuit.outputs fc)
                    <> program.Tester.reset_outputs)
                    || List.exists
                         (fun step ->
                           let s = Timed_sim.apply_vector sim step.Tester.inputs in
                           Array.map (fun o -> s.(o)) (Circuit.outputs fc)
                           <> step.Tester.expected)
                         burst.Tester.steps
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s seed %d detects %s" name seed
                       (Fault.to_string c f))
                    true mismatch)
                burst.Tester.targets)
            program.Tester.bursts)
        [ 11; 23 ])
    [ "ebergen"; "vbe6a"; "sbuf-send-ctl" ]

let suites =
  [
    ( "sim.timed",
      [
        Alcotest.test_case "valid vector matches exact" `Quick
          test_valid_vector_matches_exact;
        Alcotest.test_case "race is delay-dependent" `Quick
          test_race_is_delay_dependent;
        Alcotest.test_case "oscillator window" `Quick test_oscillator_hits_window;
        Alcotest.test_case "program robust under delays" `Slow
          test_program_robust_under_delays;
      ] );
  ]
