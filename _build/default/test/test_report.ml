(* Tests for the table renderer. *)

open Satg_report

let test_ascii () =
  let t = Table.create ~header:[ "name"; "n" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "b"; "12345" ];
  let s = Table.to_ascii t in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "5 lines" 5 (List.length lines);
  (* Right-aligned numeric column: "12345" ends its line. *)
  let last = List.nth lines 4 in
  Alcotest.(check bool) "right aligned" true
    (String.length last >= 5
    && String.sub last (String.length last - 5) 5 = "12345")

let test_width_mismatch () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Table.add_row: 1 cells, expected 2") (fun () ->
      Table.add_row t [ "x" ])

let test_csv () =
  let t = Table.create ~header:[ "name"; "value" ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_row t [ "with,comma"; "say \"hi\"" ];
  Table.add_separator t;
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv"
    "name,value\nplain,1\n\"with,comma\",\"say \"\"hi\"\"\"\n" csv

let test_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.142);
  Alcotest.(check string) "float d0" "3" (Table.cell_float ~decimals:0 3.142);
  Alcotest.(check string) "pct" "98.77%" (Table.cell_pct 98.765)

let suites =
  [
    ( "report",
      [
        Alcotest.test_case "ascii" `Quick test_ascii;
        Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
        Alcotest.test_case "csv" `Quick test_csv;
        Alcotest.test_case "cells" `Quick test_cells;
      ] );
  ]
