(* Tests for the STG toolkit: parsing, token-game reachability,
   consistency / boundedness / CSC checks, and the two synthesis
   backends. *)

open Satg_logic
open Satg_circuit
open Satg_stg
open Satg_sg

let parse_exn text =
  match Stg.parse_string text with
  | Ok t -> t
  | Error m -> Alcotest.failf "parse error: %s" m

let handshake_text =
  {|.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.init req=0 ack=0
.end|}

let celem_text =
  {|.model celem_stg
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.init a=0 b=0 c=0
.end|}

let test_parse_basic () =
  let t = parse_exn handshake_text in
  Alcotest.(check (list string)) "inputs" [ "req" ] (Stg.input_signals t);
  Alcotest.(check (list string)) "outputs" [ "ack" ] (Stg.output_signals t);
  Alcotest.(check int) "transitions" 4 (Array.length t.Stg.transitions);
  Alcotest.(check int) "places" 4 (Array.length t.Stg.places);
  Alcotest.(check int) "one token" 1
    (Array.fold_left ( + ) 0 t.Stg.marking)

let test_parse_roundtrip () =
  List.iter
    (fun text ->
      let t = parse_exn text in
      let t2 = parse_exn (Stg.to_string t) in
      Alcotest.(check string) "names" t.Stg.name t2.Stg.name;
      Alcotest.(check int) "transitions"
        (Array.length t.Stg.transitions)
        (Array.length t2.Stg.transitions);
      (* Same reachable state count after a round trip. *)
      match (Stg.explore t, Stg.explore t2) with
      | Ok a, Ok b ->
        Alcotest.(check int) "states" (Array.length a.Stg.states)
          (Array.length b.Stg.states)
      | _ -> Alcotest.fail "exploration failed")
    [ handshake_text; celem_text ]

let test_parse_errors () =
  let check_err text frag =
    match Stg.parse_string text with
    | Ok _ -> Alcotest.failf "expected error with %S" frag
    | Error m ->
      let contains s sub =
        let n = String.length sub in
        let rec at i = i + n <= String.length s && (String.sub s i n = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) (m ^ " contains " ^ frag) true (contains m frag)
  in
  check_err ".model x\n.inputs a\n.graph\nb+ a+\n.init a=0\n.end" "unknown signal";
  check_err ".model x\n.inputs a\n.graph\na+ a-\n.marking { nosuch }\n.init a=0\n.end"
    "unknown place";
  check_err ".model x\n.inputs a\n.graph\na+ a-\n.marking { <a+,a-> }\n.end"
    "not assigned"

let test_explore_handshake () =
  let t = parse_exn handshake_text in
  match Stg.explore t with
  | Error m -> Alcotest.fail m
  | Ok sg ->
    Alcotest.(check int) "4 states" 4 (Array.length sg.Stg.states);
    Alcotest.(check bool) "csc holds" true (Stg.check_csc sg = Ok ());
    (* Initial state: only req+ (an input) is enabled. *)
    let ex0 = sg.Stg.excited.(sg.Stg.initial_state) in
    Alcotest.(check bool) "req excited" true ex0.(0);
    Alcotest.(check bool) "ack quiet" false ex0.(1)

let test_explore_celem () =
  let t = parse_exn celem_text in
  match Stg.explore t with
  | Error m -> Alcotest.fail m
  | Ok sg ->
    (* a and b fire concurrently in both phases: 4 + 4 markings around
       the cycle with c switching in between: 8 states. *)
    Alcotest.(check int) "8 states" 8 (Array.length sg.Stg.states);
    Alcotest.(check bool) "csc holds" true (Stg.check_csc sg = Ok ())

let test_inconsistent () =
  let t =
    parse_exn
      {|.model bad
.inputs a
.outputs x
.graph
a+ a+/2
a+/2 x+
x+ a+
.marking { <x+,a+> }
.init a=0 x=0
.end|}
  in
  match Stg.explore t with
  | Error m ->
    Alcotest.(check bool) "mentions consistency" true
      (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected inconsistency"

let test_unbounded () =
  let t =
    parse_exn
      {|.model unb
.inputs a
.outputs x
.graph
a+ p a-
a- a+
p x+
.marking { <a-,a+> }
.init a=0 x=0
.end|}
  in
  (* p receives a token on every a+ but x+ consumes only one: with the
     default bound of 2 the third a+ overflows. *)
  match Stg.explore t with
  | Error m ->
    let contains s sub =
      let n = String.length sub in
      let rec at i = i + n <= String.length s && (String.sub s i n = sub || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "mentions unbounded" true (contains m "unbounded")
  | Ok _ -> Alcotest.fail "expected boundedness failure"

let test_csc_violation () =
  let t =
    parse_exn
      {|.model cscviol
.inputs a
.outputs x
.graph
a+ x+
x+ a-
a- a+/2
a+/2 x-
x- a-/2
a-/2 a+
.marking { <a-/2,a+> }
.init a=0 x=0
.end|}
  in
  match Stg.explore t with
  | Error m -> Alcotest.fail m
  | Ok sg -> (
    match Stg.check_csc sg with
    | Error m ->
      let contains s sub =
        let n = String.length sub in
        let rec at i = i + n <= String.length s && (String.sub s i n = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "names CSC" true (contains m "CSC")
    | Ok () -> Alcotest.fail "expected CSC violation")

(* --- synthesis ------------------------------------------------------------ *)

let test_synth_handshake_complex () =
  let t = parse_exn handshake_text in
  match Synth.complex_gate t with
  | Error m -> Alcotest.fail m
  | Ok c ->
    Alcotest.(check bool) "validates" true (Circuit.validate c = Ok ());
    Alcotest.(check bool) "has reset" true (Circuit.initial c <> None);
    (* ack's next-state function is just req, so the only stable states
       are all-zero and all-one (intermediate codes are transient). *)
    let g = Explicit.build c in
    Alcotest.(check int) "two stable states" 2 (Cssg.n_states g);
    Alcotest.(check int) "request and release edges" 2 (Cssg.n_edges g)

let canonical g =
  let c = Cssg.circuit g in
  List.concat
    (List.init (Cssg.n_states g) (fun i ->
         List.map
           (fun e ->
             ( Circuit.state_to_string c (Cssg.state g i),
               Circuit.state_to_string c (Cssg.state g e.Cssg.target) ))
           (Cssg.successors g i)))
  |> List.sort Stdlib.compare

let test_synth_celem_matches_primitive () =
  (* The complex gate synthesized from the C-element STG must generate
     exactly the same CSSG as the hand-written primitive C-element
     circuit (same node layout, same behaviour). *)
  let t = parse_exn celem_text in
  match Synth.complex_gate t with
  | Error m -> Alcotest.fail m
  | Ok c ->
    let prim = Satg_bench.Figures.celem_handshake () in
    let a = Explicit.build c and b = Explicit.build prim in
    Alcotest.(check int) "state count" (Cssg.n_states b) (Cssg.n_states a);
    Alcotest.(check int) "edge count" (Cssg.n_edges b) (Cssg.n_edges a);
    List.iter2
      (fun (s1, d1) (s2, d2) ->
        Alcotest.(check string) "edge src" s2 s1;
        Alcotest.(check string) "edge dst" d2 d1)
      (canonical a) (canonical b)

let test_synth_decomposed () =
  let t = parse_exn celem_text in
  match Synth.decomposed t with
  | Error m -> Alcotest.fail m
  | Ok c ->
    Alcotest.(check bool) "validates" true (Circuit.validate c = Ok ());
    Alcotest.(check bool) "only simple gates" true
      (Array.for_all
         (fun gid ->
           match Circuit.func c gid with
           | Gatefunc.Sop _ | Gatefunc.Celem | Gatefunc.Mux -> false
           | Gatefunc.And | Gatefunc.Or | Gatefunc.Not | Gatefunc.Buf
           | Gatefunc.Const _ ->
             Array.length (Circuit.fanins c gid) <= 2
           | Gatefunc.Nand | Gatefunc.Nor | Gatefunc.Xor | Gatefunc.Xnor ->
             false)
         (Circuit.gates c));
    Alcotest.(check bool) "more gates than complex" true
      (Circuit.n_gates c > 3)

let test_synth_redundant_no_smaller () =
  (* The majority cover of the C-element has no opposing literal pairs,
     so consensus closure is a no-op here; covers that do produce
     redundancy are exercised by the benchmark suite tests. *)
  let t = parse_exn celem_text in
  match (Synth.decomposed t, Synth.decomposed ~redundant:true t) with
  | Ok plain, Ok red ->
    Alcotest.(check bool) "never smaller" true
      (Circuit.n_gates red >= Circuit.n_gates plain)
  | Error m, _ | _, Error m -> Alcotest.fail m

let test_add_consensus () =
  (* ab + !ac has consensus bc. *)
  let f = Cover.make ~n:3 [ Cube.of_string "11-"; Cube.of_string "0-1" ] in
  let g = Synth.add_consensus f in
  Alcotest.(check int) "one term added" 3 (Cover.cube_count g);
  Alcotest.(check bool) "same function" true (Cover.equal_semantics f g);
  (* Ternary: the redundant cover is hazard-free at a=Phi, b=c=1. *)
  Alcotest.(check bool) "hazard gone" true
    (Ternary.equal
       (Cover.eval_ternary g [| Ternary.Phi; Ternary.One; Ternary.One |])
       Ternary.One);
  (* Idempotent on already-closed covers. *)
  Alcotest.(check int) "closed" 3 (Cover.cube_count (Synth.add_consensus g))

let test_next_state_covers () =
  let t = parse_exn celem_text in
  match Stg.explore t with
  | Error m -> Alcotest.fail m
  | Ok sg ->
    let covers = Synth.next_state_covers sg in
    Alcotest.(check int) "one output" 1 (List.length covers);
    let _, cover = List.hd covers in
    (* majority(a, b, c) - verify semantically over reachable codes. *)
    List.iter
      (fun (code, expect) ->
        Alcotest.(check bool)
          (Printf.sprintf "NS_c(%d)" code)
          expect
          (Cover.eval_minterm cover code))
      [ (0b000, false); (0b100, false); (0b010, false); (0b110, true);
        (0b111, true); (0b011, true); (0b101, true) ]

let test_output_persistency () =
  (* Every bundled benchmark is output-persistent... *)
  List.iter
    (fun e ->
      match Stg.explore e.Satg_bench.Suite.stg with
      | Error m -> Alcotest.fail m
      | Ok sg ->
        Alcotest.(check bool)
          (e.Satg_bench.Suite.name ^ " persistent")
          true
          (Stg.check_output_persistency sg = Ok ()))
    (Satg_bench.Suite.all ());
  (* ... while a free choice between an output and an input is not:
     the environment firing b+ steals the token that enabled x+. *)
  let bad =
    parse_exn
      {|.model choice
.inputs a b
.outputs x
.graph
q a+
a+ p
p x+
p b+
.marking { q }
.init a=0 b=0 x=0
.end|}
  in
  match Stg.explore bad with
  | Error m -> Alcotest.fail m
  | Ok sg -> (
    match Stg.check_output_persistency sg with
    | Error m ->
      Alcotest.(check bool) "mentions x+" true
        (String.length m > 0 && String.sub m (String.length m - 2) 2 = "x+")
    | Ok () -> Alcotest.fail "expected persistency violation")

let suites =
  [
    ( "stg.model",
      [
        Alcotest.test_case "parse basic" `Quick test_parse_basic;
        Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "explore handshake" `Quick test_explore_handshake;
        Alcotest.test_case "explore celem" `Quick test_explore_celem;
        Alcotest.test_case "inconsistency" `Quick test_inconsistent;
        Alcotest.test_case "unboundedness" `Quick test_unbounded;
        Alcotest.test_case "csc violation" `Quick test_csc_violation;
        Alcotest.test_case "output persistency" `Quick test_output_persistency;
      ] );
    ( "stg.synth",
      [
        Alcotest.test_case "handshake complex" `Quick test_synth_handshake_complex;
        Alcotest.test_case "celem = primitive" `Quick test_synth_celem_matches_primitive;
        Alcotest.test_case "decomposed" `Quick test_synth_decomposed;
        Alcotest.test_case "redundant not smaller" `Quick test_synth_redundant_no_smaller;
        Alcotest.test_case "consensus" `Quick test_add_consensus;
        Alcotest.test_case "next-state covers" `Quick test_next_state_covers;
      ] );
  ]
