(* Suite-wide sanity tests: every bundled benchmark must parse,
   explore, satisfy CSC, synthesize in both styles, produce a usable
   CSSG, and round-trip through the netlist text format with identical
   behaviour.  Slower whole-pipeline checks run on a fixed subset. *)

open Satg_circuit
open Satg_fault
open Satg_stg
open Satg_sg
open Satg_core
open Satg_bench

let test_names_and_lookup () =
  Alcotest.(check int) "23 benchmarks" 23 (List.length Suite.names);
  List.iter
    (fun nm ->
      match Suite.find nm with
      | Some e -> Alcotest.(check string) "name matches" nm e.Suite.name
      | None -> Alcotest.failf "lookup failed for %s" nm)
    Suite.names;
  Alcotest.(check bool) "unknown name" true (Suite.find "nosuch" = None)

let test_all_explore_and_csc () =
  List.iter
    (fun e ->
      match Stg.explore e.Suite.stg with
      | Error m -> Alcotest.failf "%s: %s" e.Suite.name m
      | Ok sg -> (
        Alcotest.(check bool)
          (e.Suite.name ^ " has states")
          true
          (Array.length sg.Stg.states >= 4);
        match Stg.check_csc sg with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s: %s" e.Suite.name m))
    (Suite.all ())

let test_all_synthesize () =
  List.iter
    (fun e ->
      List.iter
        (fun (label, synth) ->
          match synth e with
          | Error m -> Alcotest.failf "%s (%s): %s" e.Suite.name label m
          | Ok c ->
            Alcotest.(check bool)
              (Printf.sprintf "%s (%s) validates" e.Suite.name label)
              true
              (Circuit.validate c = Ok ());
            (match Circuit.initial c with
            | Some s ->
              Alcotest.(check bool)
                (Printf.sprintf "%s (%s) reset stable" e.Suite.name label)
                true (Circuit.is_stable c s)
            | None ->
              Alcotest.failf "%s (%s): no reset state" e.Suite.name label);
            (* Round-trip through the text format. *)
            (match Parser.parse_string (Parser.to_string c) with
            | Error m ->
              Alcotest.failf "%s (%s) reparse: %s" e.Suite.name label m
            | Ok c' ->
              Alcotest.(check int)
                (Printf.sprintf "%s (%s) same size" e.Suite.name label)
                (Circuit.n_nodes c) (Circuit.n_nodes c')))
        [ ("si", Suite.speed_independent); ("bd", Suite.bounded_delay) ])
    (Suite.all ())

let test_all_cssgs_alive () =
  (* Every speed-independent benchmark must have a non-degenerate
     synchronous abstraction: some state and, except for oscillators
     (none in the suite), some valid vector. *)
  List.iter
    (fun e ->
      match Suite.speed_independent e with
      | Error m -> Alcotest.failf "%s: %s" e.Suite.name m
      | Ok c ->
        let g = Explicit.build c in
        Alcotest.(check bool)
          (e.Suite.name ^ " has states")
          true (Cssg.n_states g >= 2);
        Alcotest.(check bool)
          (e.Suite.name ^ " has edges")
          true (Cssg.n_edges g >= 1))
    (Suite.all ())

let test_si_output_stuck_at_full_coverage () =
  (* The paper's headline theoretical fact (§6): speed-independent
     circuits are 100% output stuck-at testable, and the methodology
     preserves that. *)
  List.iter
    (fun e ->
      match Suite.speed_independent e with
      | Error m -> Alcotest.failf "%s: %s" e.Suite.name m
      | Ok c ->
        let r = Engine.run c ~faults:(Fault.universe_output_sa c) in
        Alcotest.(check int)
          (e.Suite.name ^ " output-sa coverage")
          (Engine.total r) (Engine.detected r))
    (Suite.all ())

let test_redundant_family_shape () =
  (* Table 2's qualitative finding: the redundant (hazard-free)
     versions of the latch-style benchmarks lose coverage, the others
     stay close to full. *)
  let coverage e =
    match Suite.bounded_delay e with
    | Error m -> Alcotest.failf "%s: %s" e.Suite.name m
    | Ok c ->
      let r = Engine.run c ~faults:(Fault.universe_input_sa c) in
      100.0 *. float_of_int (Engine.detected r) /. float_of_int (Engine.total r)
  in
  let poor = [ "converta"; "trimos-send"; "vbe10b" ] in
  let clean = [ "chu150"; "ebergen"; "rcv-setup"; "seq4" ] in
  List.iter
    (fun nm ->
      let e = Option.get (Suite.find nm) in
      Alcotest.(check bool)
        (nm ^ " poor coverage") true
        (coverage e < 80.0))
    poor;
  List.iter
    (fun nm ->
      let e = Option.get (Suite.find nm) in
      Alcotest.(check bool)
        (nm ^ " clean coverage") true
        (coverage e >= 95.0))
    clean

let test_symbolic_agrees_on_small_benchmarks () =
  (* Cross-check the BDD engine against the explicit one on the
     smaller synthesized circuits too (not just the figure fixtures). *)
  List.iter
    (fun nm ->
      let e = Option.get (Suite.find nm) in
      match Suite.speed_independent e with
      | Error m -> Alcotest.failf "%s: %s" nm m
      | Ok c ->
        let k = Structure.default_k c in
        let exp = Explicit.build ~exploration:`Pure ~k c in
        let sym = Symbolic.build ~k c in
        Alcotest.(check int)
          (nm ^ " state count")
          (Cssg.n_states exp)
          (Symbolic.n_reachable sym);
        let gs = Symbolic.to_cssg sym in
        Alcotest.(check int) (nm ^ " edges") (Cssg.n_edges exp) (Cssg.n_edges gs))
    [ "hazard"; "rcv-setup"; "vbe6a"; "converta"; "dff"; "nowick" ]

let test_three_phase_sequences_replay_exactly () =
  (* Every three-phase test found on a redundant circuit must replay
     under the exact-set checker (the stronger of the two). *)
  let e = Option.get (Suite.find "vbe6a") in
  match Suite.bounded_delay e with
  | Error m -> Alcotest.fail m
  | Ok c ->
    let g = Explicit.build c in
    let r =
      Engine.run
        ~config:{ Engine.default_config with enable_random = false }
        ~cssg:g c ~faults:(Fault.universe_input_sa c)
    in
    List.iter
      (fun o ->
        match o.Testset.status with
        | Testset.Detected { sequence; phase = Testset.Three_phase } ->
          Alcotest.(check bool)
            ("replays " ^ Fault.to_string c o.Testset.fault)
            true
            (Detect.check_exact g o.Testset.fault sequence)
        | _ -> ())
      r.Engine.outcomes

let suites =
  [
    ( "suite",
      [
        Alcotest.test_case "names and lookup" `Quick test_names_and_lookup;
        Alcotest.test_case "explore + csc" `Quick test_all_explore_and_csc;
        Alcotest.test_case "synthesize both styles" `Quick test_all_synthesize;
        Alcotest.test_case "cssgs alive" `Quick test_all_cssgs_alive;
        Alcotest.test_case "SI output-sa 100%" `Slow test_si_output_stuck_at_full_coverage;
        Alcotest.test_case "redundant family shape" `Slow test_redundant_family_shape;
        Alcotest.test_case "symbolic agrees (benchmarks)" `Slow test_symbolic_agrees_on_small_benchmarks;
        Alcotest.test_case "3-phase replays exactly" `Slow test_three_phase_sequences_replay_exactly;
      ] );
  ]
