(* Hierarchy (paper §7): compose two Muller-pipeline stages into one
   circuit and test the composite.  The stage controllers come from the
   bundled "ebergen" STG; stage1's request output drives stage2's
   request input and stage2's acknowledge drives stage1's ack input —
   the internal handshake becomes wire-delayed internal logic, invisible
   to the tester, yet the composite remains fully testable.

     dune exec examples/pipeline.exe *)

open Satg_circuit
open Satg_fault
open Satg_sg
open Satg_core
open Satg_bench

let stage name =
  let e = Option.get (Suite.find "ebergen") in
  match Suite.speed_independent e with
  | Error m -> failwith m
  | Ok c -> (
    (* give each instance its own name by round-tripping the text *)
    let text = Parser.to_string c in
    let renamed =
      "circuit " ^ name
      ^ String.sub text (String.index text '\n')
          (String.length text - String.index text '\n')
    in
    match Parser.parse_string renamed with
    | Ok c -> c
    | Error m -> failwith m)

let () =
  let s1 = stage "stage1" and s2 = stage "stage2" in
  Format.printf "stage: %a@." Circuit.pp_stats s1;
  match
    Compose.pair ~name:"pipe2"
      ~connect_ab:[ ("ro", "ri") ]  (* stage1 request -> stage2 *)
      ~connect_ba:[ ("ai", "ao") ]  (* stage2 ack     -> stage1 *)
      s1 s2
  with
  | Error m -> failwith m
  | Ok pipe ->
    Format.printf "composite: %a@." Circuit.pp_stats pipe;
    Format.printf "tester-visible inputs: %s@."
      (String.concat " " (Array.to_list (Circuit.input_names pipe)));
    let g = Explicit.build pipe in
    Format.printf "%a@." Cssg.pp_stats g;
    let faults = Fault.universe_input_sa pipe in
    let r = Engine.run ~cssg:g pipe ~faults in
    Format.printf "%a@." Engine.pp_summary r;
    (* The deliverable: a program for a synchronous tester. *)
    let program = Tester.of_result r in
    Format.printf "@.%a@." Tester.pp program
