examples/cssg_walkthrough.mli:
