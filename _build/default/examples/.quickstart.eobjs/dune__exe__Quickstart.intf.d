examples/quickstart.mli:
