examples/pipeline.ml: Array Circuit Compose Cssg Engine Explicit Fault Format Option Parser Satg_bench Satg_circuit Satg_core Satg_fault Satg_sg String Suite Tester
