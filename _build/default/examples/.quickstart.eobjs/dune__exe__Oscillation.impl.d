examples/oscillation.ml: Async_sim Circuit Cssg Explicit Figures Format List Option Satg_bench Satg_circuit Satg_logic Satg_sg Satg_sim Ternary_sim Unit_delay
