examples/synthesis_flow.ml: Array Cssg Engine Explicit Fault Format List Parser Satg_bench Satg_circuit Satg_core Satg_fault Satg_logic Satg_sg Satg_stg Stg String Suite Synth Sys
