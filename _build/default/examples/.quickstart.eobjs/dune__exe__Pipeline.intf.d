examples/pipeline.mli:
