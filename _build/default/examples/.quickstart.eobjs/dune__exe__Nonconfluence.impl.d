examples/nonconfluence.ml: Array Async_sim Circuit Cssg Explicit Figures Format List Option Satg_bench Satg_circuit Satg_logic Satg_sg Satg_sim String Ternary_sim
