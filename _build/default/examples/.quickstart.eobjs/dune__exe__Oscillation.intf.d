examples/oscillation.mli:
