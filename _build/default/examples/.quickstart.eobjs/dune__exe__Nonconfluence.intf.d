examples/nonconfluence.mli:
