examples/cssg_walkthrough.ml: Array Async_sim Circuit Cssg Explicit Figures Format List Option Printf Satg_bench Satg_circuit Satg_sg Satg_sim String Structure
