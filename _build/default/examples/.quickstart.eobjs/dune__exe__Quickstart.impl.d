examples/quickstart.ml: Array Circuit Cssg Engine Explicit Fault Format Gatefunc List Satg_circuit Satg_core Satg_fault Satg_sg Testset
