(* End-to-end flow: STG specification -> logic synthesis (both
   backends) -> CSSG -> ATPG, on one of the bundled benchmarks.

     dune exec examples/synthesis_flow.exe [benchmark-name] *)

open Satg_circuit
open Satg_fault
open Satg_stg
open Satg_sg
open Satg_core
open Satg_bench

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "vbe6a" in
  let entry =
    match Suite.find name with
    | Some e -> e
    | None ->
      prerr_endline ("unknown benchmark " ^ name ^ "; try: "
                     ^ String.concat " " Suite.names);
      exit 1
  in
  Format.printf "=== specification ===@.%s@." (Stg.to_string entry.Suite.stg);

  (* The state graph and the next-state functions behind synthesis. *)
  (match Stg.explore entry.Suite.stg with
  | Error m -> failwith m
  | Ok sg ->
    Format.printf "reachable STG states: %d; CSC: %s@.@."
      (Array.length sg.Stg.states)
      (match Stg.check_csc sg with Ok () -> "ok" | Error m -> m);
    List.iter
      (fun (nm, cover) ->
        Format.printf "  NS(%s) = %a@." nm Satg_logic.Cover.pp cover)
      (Synth.next_state_covers sg);
    List.iter
      (fun (nm, cover) ->
        Format.printf "  primes(%s) = %a@." nm Satg_logic.Cover.pp cover)
      (Synth.prime_covers sg));

  let run label circuit =
    Format.printf "@.=== %s ===@." label;
    Format.printf "%s" (Parser.to_string circuit);
    let g = Explicit.build circuit in
    Format.printf "%a@." Cssg.pp_stats g;
    let r = Engine.run ~cssg:g circuit ~faults:(Fault.universe_input_sa circuit) in
    Format.printf "%a@." Engine.pp_summary r;
    List.iter
      (fun f -> Format.printf "  undetectable: %s@." (Fault.to_string circuit f))
      (Engine.undetected_faults r)
  in
  (match Suite.speed_independent entry with
  | Ok c -> run "speed-independent (complex gate)" c
  | Error m -> Format.printf "synthesis failed: %s@." m);
  (match Synth.decomposed entry.Suite.stg with
  | Ok c -> run "bounded-delay (decomposed, irredundant)" c
  | Error m -> Format.printf "synthesis failed: %s@." m);
  match Suite.bounded_delay entry with
  | Ok c -> run "bounded-delay (decomposed, all-primes redundant)" c
  | Error m -> Format.printf "synthesis failed: %s@." m
