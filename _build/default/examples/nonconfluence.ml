(* Figure 1(a) of the paper: non-confluence of the settling state.

   The circuit races a rising input against a falling one through an
   AND gate into a set-dominant latch.  Depending on gate delays, the
   latch may or may not capture the pulse: the final stable state is
   delay-dependent, so the vector is unusable by a synchronous tester
   and the CSSG prunes it.

     dune exec examples/nonconfluence.exe *)

open Satg_circuit
open Satg_sim
open Satg_sg
open Satg_bench

let () =
  let c = Figures.fig1a () in
  let reset = Option.get (Circuit.initial c) in
  Format.printf "circuit: %a@." Circuit.pp_stats c;
  Format.printf "reset state: %s@." (Circuit.state_to_string c reset);

  (* Exact unbounded-delay exploration of the racing vector (1,0). *)
  (match Async_sim.apply_vector c ~k:64 reset [| true; false |] with
  | Async_sim.Non_confluent finals ->
    Format.printf "@.vector A=1 B=0: NON-CONFLUENT, %d possible outcomes:@."
      (List.length finals);
    List.iter
      (fun s -> Format.printf "   %s@." (Circuit.state_to_string c s))
      finals
  | Async_sim.Settles _ | Async_sim.Exceeds_budget ->
    Format.printf "unexpected@.");

  (* Ternary simulation reaches the same verdict conservatively. *)
  let t =
    Ternary_sim.apply_vector c
      (Ternary_sim.of_bool_state reset)
      [| true; false |]
  in
  Format.printf "@.ternary simulation of the same vector: %s@."
    (Satg_logic.Ternary.vector_to_string t);
  Format.printf "(X marks the delay-dependent signals)@.";

  (* The CSSG therefore contains no (1,0) edge out of reset. *)
  let g = Explicit.build c in
  let reset_id = List.hd (Cssg.initial g) in
  Format.printf "@.CSSG: %a@." Cssg.pp_stats g;
  Format.printf "valid vectors at reset:";
  List.iter
    (fun e ->
      Format.printf " %s"
        (String.init
           (Array.length e.Cssg.vector)
           (fun i -> if e.Cssg.vector.(i) then '1' else '0')))
    (Cssg.successors g reset_id);
  Format.printf "@."
