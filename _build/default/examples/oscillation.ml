(* Figure 1(b) of the paper: oscillation.

   A NAND loop enabled by the primary input never settles once the
   input rises.  The exact engine exhausts its firing budget, ternary
   simulation floods the loop with X, and the CSSG ends up with no
   valid vectors at all — the circuit cannot be exercised by a
   synchronous tester (only reset-state observation remains).

     dune exec examples/oscillation.exe *)

open Satg_circuit
open Satg_sim
open Satg_sg
open Satg_bench

let () =
  let c = Figures.fig1b () in
  let reset = Option.get (Circuit.initial c) in
  Format.printf "circuit: %a@." Circuit.pp_stats c;

  (* Watch the unit-delay trace cycle. *)
  (match Unit_delay.apply_vector c ~max_steps:16 reset [| true |] with
  | Unit_delay.Oscillates cycle ->
    Format.printf "@.unit-delay trace after A+ (repeats):@.";
    List.iter
      (fun s -> Format.printf "   %s@." (Circuit.state_to_string c s))
      cycle
  | Unit_delay.Settled _ -> Format.printf "unexpected@.");

  (* The exact engine classifies the vector as exceeding any budget. *)
  (match Async_sim.apply_vector c ~k:128 reset [| true |] with
  | Async_sim.Exceeds_budget ->
    Format.printf "@.exact exploration: still unstable after 128 firings@."
  | _ -> Format.printf "unexpected@.");

  let t =
    Ternary_sim.apply_vector c (Ternary_sim.of_bool_state reset) [| true |]
  in
  Format.printf "ternary simulation:       %s@."
    (Satg_logic.Ternary.vector_to_string t);

  let g = Explicit.build c in
  Format.printf "@.CSSG: %a@." Cssg.pp_stats g;
  Format.printf
    "no valid vectors: only faults visible in the reset state are testable@."
