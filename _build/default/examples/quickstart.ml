(* Quickstart: build an asynchronous circuit, abstract it as a
   synchronous FSM (the CSSG), and generate synchronous test patterns
   for every input stuck-at fault.

     dune exec examples/quickstart.exe *)

open Satg_circuit
open Satg_fault
open Satg_sg
open Satg_core

let () =
  (* A Muller C-element joining two request lines.  Primary inputs get
     delay buffers automatically; the netlist reads the buffer outputs. *)
  let b = Circuit.Builder.create "quickstart" in
  let a = Circuit.Builder.add_input b "a" in
  let b_in = Circuit.Builder.add_input b "b" in
  let c = Circuit.Builder.add_gate b ~name:"c" Gatefunc.Celem [ a; b_in ] in
  Circuit.Builder.mark_output b c;
  let circuit = Circuit.Builder.finalize b in

  (* Attach a reset state: everything low. *)
  let circuit =
    Circuit.with_initial circuit (Array.make (Circuit.n_nodes circuit) false)
  in
  Format.printf "%a@." Circuit.pp_stats circuit;

  (* The synchronous abstraction: stable states + valid input vectors. *)
  let g = Explicit.build circuit in
  Format.printf "%a@." Cssg.pp g;

  (* ATPG for the input stuck-at universe. *)
  let faults = Fault.universe_input_sa circuit in
  let result = Engine.run ~cssg:g circuit ~faults in
  List.iter
    (fun o -> Format.printf "  %a@." (Testset.pp_outcome circuit) o)
    result.Engine.outcomes;
  Format.printf "%a@." Engine.pp_summary result
