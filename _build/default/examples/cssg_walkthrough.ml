(* Figure 2 of the paper: from the test-mode state graph to the CSSG.

   We use the cross-coupled NOR latch: most vectors are valid, but
   releasing both requests at once races the latch, so that edge is
   pruned.  States reachable only through pruned vectors remain nodes
   of the graph (like s1 in the paper's figure), and state
   justification routes around them.

     dune exec examples/cssg_walkthrough.exe *)

open Satg_circuit
open Satg_sim
open Satg_sg
open Satg_bench

let vec_to_string v =
  String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')

let () =
  let c = Figures.mutex_latch () in
  let reset = Option.get (Circuit.initial c) in
  Format.printf "circuit: %a@." Circuit.pp_stats c;

  (* Classify every vector from every stable state: the TCSG view. *)
  let k = Structure.default_k c in
  let stables = Async_sim.reachable_stable_states c ~k ~from:[ reset ] in
  Format.printf "@.test-mode classification of every (state, vector) pair:@.";
  List.iter
    (fun s ->
      List.iter
        (fun mask ->
          let v = Array.init 2 (fun i -> mask land (1 lsl i) <> 0) in
          if v <> Circuit.input_vector_of_state c s then begin
            let verdict =
              match Async_sim.apply_vector c ~k s v with
              | Async_sim.Settles s' ->
                Printf.sprintf "settles to %s" (Circuit.state_to_string c s')
              | Async_sim.Non_confluent finals ->
                Printf.sprintf "NON-CONFLUENT (%d outcomes) - pruned"
                  (List.length finals)
              | Async_sim.Exceeds_budget -> "unstable at k - pruned"
            in
            Format.printf "   %s --%s--> %s@."
              (Circuit.state_to_string c s)
              (vec_to_string v) verdict
          end)
        [ 0; 1; 2; 3 ])
    stables;

  (* The surviving graph. *)
  let g = Explicit.build c in
  Format.printf "@.the resulting CSSG:@.%a@." Cssg.pp g;

  (* Justification: drive the latch to Q=0, QB=1 with both inputs low.
     The shortest route needs two vectors. *)
  let q = Option.get (Circuit.find_node c "Q") in
  let qb = Option.get (Circuit.find_node c "QB") in
  let target i =
    let s = Cssg.state g i in
    (not s.(q)) && s.(qb)
    && not (Circuit.input_vector_of_state c s).(0)
    && not (Circuit.input_vector_of_state c s).(1)
  in
  match Cssg.justify g ~target () with
  | Some (vectors, goal) ->
    Format.printf "justifying Q=0 QB=1 R=S=0: apply %s -> state %s@."
      (String.concat " then " (List.map vec_to_string vectors))
      (Circuit.state_to_string c (Cssg.state g goal))
  | None -> Format.printf "justification failed@."
