(* Developer utility: one-line ATPG report per benchmark.

     dune exec dev/check_suite.exe [si|bd]       coverage + phase split
     dune exec dev/check_suite.exe undetected    list undetected faults *)

let report_row which e =
  let open Satg_bench in
  let name = e.Suite.name in
  let syn =
    if which = "bd" then Suite.bounded_delay else Suite.speed_independent
  in
  match syn e with
  | Error m -> Printf.printf "%-16s SYNTH FAIL: %s\n%!" name m
  | Ok c ->
    let t0 = Sys.time () in
    let module F = Satg_fault.Fault in
    let module E = Satg_core.Engine in
    let g = Satg_sg.Explicit.build c in
    let out_r = E.run ~cssg:g c ~faults:(F.universe_output_sa c) in
    let in_r = E.run ~cssg:g c ~faults:(F.universe_input_sa c) in
    Printf.printf
      "%-16s cssg:%3d/%4d  out %3d/%3d  in %3d/%3d  rnd %3d 3ph %3d sim %3d  %.2fs\n%!"
      name
      (Satg_sg.Cssg.n_states g)
      (Satg_sg.Cssg.n_edges g)
      (E.detected out_r) (E.total out_r) (E.detected in_r) (E.total in_r)
      (E.detected_by in_r Satg_core.Testset.Random)
      (E.detected_by in_r Satg_core.Testset.Three_phase)
      (E.detected_by in_r Satg_core.Testset.Fault_simulation)
      (Sys.time () -. t0);
    if which = "undetected" then
      List.iter
        (fun f -> Printf.printf "      undetected %s\n" (F.to_string c f))
        (E.undetected_faults in_r @ E.undetected_faults out_r)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "si" in
  List.iter (report_row which) (Satg_bench.Suite.all ())
